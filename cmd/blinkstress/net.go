package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"blinktree"
	"blinktree/client"
	"blinktree/internal/cluster"
	"blinktree/internal/repl"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// runNetServe is the hidden child mode behind -net: blinkstress
// re-executes itself as a real blinkserver process so the parent can
// kill -9 it — an actual process death, not a simulated one. It
// listens on an ephemeral port, announces it on stdout as
// "LISTENING <addr>", and serves until SIGTERM. With follow non-empty
// the child is a read-only replica of that primary, promotable over
// the wire.
func runNetServe(shards, k, compressors int, durable bool, dir, follow string, diskNative bool, cacheBytes int64, pageSize int, addr, clusterSelf, clusterInitial string, verified bool) {
	opts := shard.Options{
		MinPairs: k, CompressorWorkers: compressors, Durable: durable, Dir: dir,
		DiskNative: diskNative, CacheBytes: cacheBytes, PageSize: pageSize,
		Verified: verified,
	}
	r, err := shard.NewRouter(shards, opts)
	if err != nil {
		fatal("child open", err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	cfg := server.Config{Addr: addr}
	if verified {
		// Publish roots fast so the audit parent sees checks quickly.
		cfg.RootEvery = 250 * time.Millisecond
	}
	if clusterSelf != "" {
		node, err := cluster.NewNode(cluster.NodeConfig{
			Self:         clusterSelf,
			Shards:       shards,
			InitialOwner: clusterInitial,
			Dir:          dir,
			Logf:         func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			fatal("child cluster", err)
		}
		if err := node.ReclaimRemote(r); err != nil {
			fatal("child cluster reclaim", err)
		}
		node.ResolveFences(r)
		cfg.Cluster = node
	}
	var follower *repl.Follower
	if follow != "" {
		fdir := ""
		if durable {
			fdir = dir
		}
		fcfg := repl.FollowerConfig{Primary: follow, Dir: fdir}
		if verified {
			// Alarm lines must reach the parent's captured stderr.
			fcfg.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
		}
		follower, err = repl.NewFollower(r, fcfg)
		if err != nil {
			fatal("child follower", err)
		}
		cfg.ReadOnly = true
		cfg.OnPromote = follower.Stop
	}
	s := server.New(r, cfg)
	if err := s.Start(); err != nil {
		fatal("child listen", err)
	}
	if follower != nil {
		follower.Start()
	}
	fmt.Printf("LISTENING %s\n", s.Addr())
	os.Stdout.Sync()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	if follower != nil {
		follower.Stop()
	}
	s.Close()
	r.Close()
	os.Exit(0)
}

// child is one spawned server process and the address it serves on.
type child struct {
	cmd  *exec.Cmd
	addr string
}

// spawnServer re-executes this binary in -net-serve mode and waits for
// its LISTENING line. A non-empty follow spawns a read-only replica of
// that primary address.
func spawnServer(shards, k, compressors int, durable bool, dir, follow string, diskNative bool, cacheBytes int64, pageSize int) *child {
	return spawn(spawnOpts{
		shards: shards, k: k, compressors: compressors,
		durable: durable, dir: dir, follow: follow,
		diskNative: diskNative, cacheBytes: cacheBytes, pageSize: pageSize,
	})
}

// spawnOpts parameterises a spawned server child. addr pins the listen
// address ("" = ephemeral) so a kill -9'd cluster member can restart
// where the map says it lives; clusterSelf/clusterInitial make the
// child a cluster member.
type spawnOpts struct {
	shards, k, compressors      int
	durable                     bool
	dir, follow                 string
	diskNative                  bool
	cacheBytes                  int64
	pageSize                    int
	addr                        string
	clusterSelf, clusterInitial string
	// verified makes the child maintain a Merkle state root (and, as
	// a follower, recompute and check every root the primary
	// publishes).
	verified bool
	// stderr overrides the child's stderr (default: inherit), so the
	// audit mode can assert on alarm lines.
	stderr io.Writer
}

func spawn(o spawnOpts) *child {
	c, err := trySpawn(o)
	if err != nil {
		fatal("spawn", err)
	}
	return c
}

// trySpawn is spawn for callers that expect the child may legitimately
// fail to come up — the audit mode starts followers on deliberately
// corrupted directories and wants the refusal, not a crash.
func trySpawn(o spawnOpts) (*child, error) {
	args := []string{
		"-net-serve",
		"-shards", strconv.Itoa(o.shards),
		"-k", strconv.Itoa(o.k),
		"-compressors", strconv.Itoa(o.compressors),
	}
	if o.durable {
		args = append(args, "-durable", "-dir", o.dir)
	}
	if o.follow != "" {
		args = append(args, "-follow", o.follow)
	}
	if o.addr != "" {
		args = append(args, "-serve-addr", o.addr)
	}
	if o.clusterSelf != "" {
		args = append(args, "-cluster-advertise", o.clusterSelf)
	}
	if o.clusterInitial != "" {
		args = append(args, "-cluster-initial", o.clusterInitial)
	}
	if o.diskNative {
		args = append(args,
			"-disk-native",
			"-cache-bytes", strconv.FormatInt(o.cacheBytes, 10),
			"-page-size", strconv.Itoa(o.pageSize))
	}
	if o.verified {
		args = append(args, "-verified")
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Stderr = os.Stderr
	if o.stderr != nil {
		cmd.Stderr = o.stderr
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		var addr string
		if n, _ := fmt.Sscanf(line, "LISTENING %s", &addr); n == 1 {
			// Keep draining the pipe so the child never blocks on stdout.
			go func() {
				for sc.Scan() {
				}
			}()
			return &child{cmd: cmd, addr: addr}, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("server child exited before announcing its address")
}

// stop terminates the child gracefully (SIGTERM) and reaps it.
func (c *child) stop() {
	c.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { c.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		c.cmd.Process.Kill()
		<-done
	}
}

// kill9 is the crash: SIGKILL, no goodbye, exactly what a power cut
// looks like to the WAL.
func (c *child) kill9() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// runNet is the -net mode: oracle-checked stress against a spawned
// blinkserver over TCP. Without -durable it validates that the wire
// layer preserves the engine's semantics under heavy pipelining;
// with -durable it additionally kill -9s the server mid-run, restarts
// it on the same directory, and verifies recovery against the oracle —
// every acknowledged write present, zero phantoms.
func runNet(dur time.Duration, workers, shards, k, compressors int, durable bool, dir, addr string) {
	if durable {
		runNetDurable(dur, workers, shards, k, compressors, dir)
		return
	}
	var cl *client.Client
	var err error
	if addr == "" {
		ch := spawnServer(shards, k, compressors, false, "", "", false, 0, 0)
		defer ch.stop()
		addr = ch.addr
	}
	cl, err = client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		fatal("dial", err)
	}
	defer cl.Close()
	// The final verification assumes exclusive ownership: every pair
	// the scan finds must map back to this run's oracle. A target that
	// already holds data would report its pairs as phantoms — a false
	// alarm, so refuse it up front.
	if n, err := cl.Len(context.Background()); err != nil {
		fatal("len", err)
	} else if n != 0 {
		fatal("precondition", fmt.Errorf("target server already holds %d pairs; "+
			"-net needs an empty, exclusively-owned index for its oracle verification", n))
	}
	fmt.Printf("blinkstress net: %d workers, shards=%d, k=%d, server=%s, %v\n",
		workers, shards, k, addr, dur)

	// Each worker owns a disjoint key slice; ops are synchronous per
	// worker, so every read can be checked against the worker's oracle
	// immediately — any wire reordering or batching bug that breaks
	// read-your-writes shows up as a mismatch.
	const keysPer = 2048
	stride := ^uint64(0)/uint64(workers*keysPer) + 1
	key := func(raw uint64) client.Key { return client.Key(raw * stride) }

	ctx := context.Background()
	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	oracle := make([]map[uint64]client.Value, workers)
	for w := 0; w < workers; w++ {
		oracle[w] = make(map[uint64]client.Value)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*6271 + 11))
			mine := oracle[w]
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
				cur, present := mine[raw]
				switch {
				case present && rng.Intn(5) == 0:
					if err := cl.Delete(ctx, key(raw)); err != nil {
						fatal("net delete", err)
					}
					delete(mine, raw)
				case present && rng.Intn(4) == 0:
					swapped, err := cl.CompareAndSwap(ctx, key(raw), cur, cur+1)
					if err != nil || !swapped {
						fatal("net cas", fmt.Errorf("swapped=%v err=%v (oracle says value %d)", swapped, err, cur))
					}
					mine[raw] = cur + 1
				case rng.Intn(3) == 0:
					v, err := cl.Search(ctx, key(raw))
					if present && (err != nil || v != cur) {
						fatal("net search", fmt.Errorf("key %d: got (%d,%v), oracle %d", raw, v, err, cur))
					}
					if !present && !errors.Is(err, blinktree.ErrNotFound) {
						fatal("net search", fmt.Errorf("key %d: got (%d,%v), oracle absent", raw, v, err))
					}
				default:
					next := client.Value(rng.Uint64() | 1)
					if _, _, err := cl.Upsert(ctx, key(raw), next); err != nil {
						fatal("net upsert", err)
					}
					mine[raw] = next
				}
				ops.Add(1)
			}
		}(w)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()

	// Full verification: every oracle entry present with its value,
	// and a full scan finds nothing the oracle doesn't know.
	total := 0
	for w := 0; w < workers; w++ {
		for raw, want := range oracle[w] {
			v, err := cl.Search(ctx, key(raw))
			if err != nil || v != want {
				fatal("verify", fmt.Errorf("key %d: got (%d,%v), want %d", raw, v, err, want))
			}
			total++
		}
	}
	phantoms := 0
	if err := cl.Range(ctx, 0, client.Key(^uint64(0)), 0, func(k client.Key, v client.Value) bool {
		raw := uint64(k) / stride
		w := int(raw) / keysPer
		if uint64(k)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		if want, ok := oracle[w][raw]; !ok || want != v {
			phantoms++
			return false
		}
		return true
	}); err != nil {
		fatal("verify scan", err)
	}
	if phantoms > 0 {
		fatal("verify", fmt.Errorf("%d phantom pairs", phantoms))
	}
	if n, err := cl.Len(ctx); err != nil || n != total {
		fatal("verify", fmt.Errorf("Len=%d err=%v, oracle has %d", n, err, total))
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		fatal("stats", err)
	}
	rate := float64(ops.Load()) / dur.Seconds()
	fmt.Printf("PASS: %d ops (%.0f ops/s) over the wire, %d keys verified, 0 phantoms\n",
		ops.Load(), rate, total)
	fmt.Printf("      server: %d shards, %d pairs, height %d, %d batch ops\n",
		st.Shards, st.Len, st.Height, st.BatchOps)
}

// runNetDurable spawns a durable server, stresses it with an exact
// oracle, kill -9s it mid-run, restarts it on the same directory and
// verifies prefix-consistent recovery over the wire.
func runNetDurable(dur time.Duration, workers, shards, k, compressors int, dir string) {
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-net")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	ch := spawnServer(shards, k, compressors, true, dir, "", false, 0, 0)
	cl, err := client.Dial(ch.addr, client.Options{Conns: 2, RetryReads: -1})
	if err != nil {
		fatal("dial", err)
	}
	fmt.Printf("blinkstress net durable: %d workers, shards=%d, k=%d, dir=%s, server=%s (pid %d), %v\n",
		workers, shards, k, dir, ch.addr, ch.cmd.Process.Pid, dur)

	// Same oracle discipline as the in-process -durable mode: disjoint
	// key slices, lastAcked = state after the newest acknowledged op,
	// attempt = the single in-flight op the kill may or may not have
	// persisted (applied+fsynced server-side, response never sent).
	const keysPer = 512
	type state struct {
		val     client.Value
		present bool
	}
	lastAcked := make([]map[uint64]state, workers)
	attempt := make([]map[uint64]state, workers)
	stride := ^uint64(0)/uint64(workers*keysPer) + 1
	key := func(raw uint64) client.Key { return client.Key(raw * stride) }

	ctx := context.Background()
	var ops atomic.Uint64
	var killed atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lastAcked[w] = make(map[uint64]state)
		attempt[w] = make(map[uint64]state)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 3))
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
				cur := lastAcked[w][raw]
				var next state
				var err error
				switch {
				case cur.present && rng.Intn(4) == 0:
					next = state{}
					err = cl.Delete(ctx, key(raw))
				case cur.present && rng.Intn(3) == 0:
					next = state{val: cur.val + 1, present: true}
					var swapped bool
					swapped, err = cl.CompareAndSwap(ctx, key(raw), cur.val, next.val)
					if err == nil && !swapped {
						fatal("net cas", fmt.Errorf("key %d: mismatch against exact oracle", raw))
					}
				default:
					next = state{val: client.Value(rng.Uint64() | 1), present: true}
					_, _, err = cl.Upsert(ctx, key(raw), next.val)
				}
				if err != nil {
					if !killed.Load() {
						fatal("net durable workload", err)
					}
					attempt[w][raw] = next
					return
				}
				lastAcked[w][raw] = next
				ops.Add(1)
			}
		}(w)
	}
	// Checkpoints over the wire while traffic flows and the kill looms.
	ckpts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		period := dur / 8
		if period < 200*time.Millisecond {
			period = 200 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := cl.Checkpoint(ctx); err != nil {
					if !killed.Load() {
						fatal("net checkpoint", err)
					}
					return
				}
				ckpts++
			}
		}
	}()

	time.Sleep(dur / 2)
	killed.Store(true)
	ch.kill9()
	close(stop)
	wg.Wait()
	cl.Close()
	ackedOps := ops.Load()
	fmt.Printf("      kill -9'd server pid %d after %d acked ops, %d checkpoints\n",
		ch.cmd.Process.Pid, ackedOps, ckpts)

	// Restart on the same directory; recovery must reproduce exactly
	// the acknowledged (± single in-flight) state.
	ch2 := spawnServer(shards, k, compressors, true, dir, "", false, 0, 0)
	defer ch2.stop()
	cl2, err := client.Dial(ch2.addr, client.Options{Conns: 2})
	if err != nil {
		fatal("redial", err)
	}
	defer cl2.Close()
	verified := 0
	for w := 0; w < workers; w++ {
		for raw, want := range lastAcked[w] {
			v, err := cl2.Search(ctx, key(raw))
			if err != nil && !errors.Is(err, blinktree.ErrNotFound) {
				fatal("verify", err)
			}
			got := state{val: v, present: err == nil}
			if got == want {
				verified++
				continue
			}
			if alt, ok := attempt[w][raw]; ok && got == alt {
				verified++ // the in-flight op's record survived the crash
				continue
			}
			fatal("verify", fmt.Errorf("key %d: recovered %+v, acked %+v, attempt %+v",
				raw, got, want, attempt[w][raw]))
		}
	}
	phantoms := 0
	if err := cl2.Range(ctx, 0, client.Key(^uint64(0)), 0, func(kk client.Key, v client.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / keysPer
		if uint64(kk)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		got := state{val: v, present: true}
		if got != lastAcked[w][raw] {
			if alt, ok := attempt[w][raw]; !ok || got != alt {
				phantoms++
				return false
			}
		}
		return true
	}); err != nil {
		fatal("verify scan", err)
	}
	if phantoms > 0 {
		fatal("verify", fmt.Errorf("%d phantom pairs survived recovery", phantoms))
	}

	// The recovered server must be fully live: more traffic, a
	// checkpoint over the wire, and the invariants (via a local reopen
	// after graceful shutdown).
	for i := uint64(0); i < 3000; i++ {
		raw := i % uint64(workers*keysPer)
		if _, _, err := cl2.Upsert(ctx, key(raw), client.Value(i)); err != nil {
			fatal("post-recovery traffic", err)
		}
	}
	if err := cl2.Checkpoint(ctx); err != nil {
		fatal("post-recovery checkpoint", err)
	}
	cl2.Close()
	ch2.stop()
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: k, Durable: true, Dir: dir})
	if err != nil {
		fatal("local reopen", err)
	}
	defer r.Close()
	if err := r.Check(); err != nil {
		fatal("post-recovery check", err)
	}
	st, err := r.Stats()
	if err != nil {
		fatal("stats", err)
	}
	fmt.Printf("PASS: %d oracle keys verified over the wire after kill -9, 0 phantoms\n", verified)
	fmt.Printf("      final state: %d pairs; local reopen replayed %d records above the last checkpoint\n",
		r.Len(), st.WAL.Replayed)
}
