package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
	"blinktree/client"
	"blinktree/internal/shard"
)

// runRepl is the -repl mode: a primary + follower pair of real server
// processes, an exact per-key oracle, and a failover. The run has two
// phases around a convergence barrier, which is what lets the
// verification be strong despite asynchronous shipping:
//
//  1. Stress the primary while the follower replicates; then stop
//     writes and wait for the follower to converge. Verify the
//     follower EXACTLY equals the oracle over the wire (every acked
//     write present, zero phantoms) — replication correctness.
//  2. Resume writes, recording each key's full acked state history;
//     kill -9 the primary mid-traffic and promote the follower.
//     Async shipping legitimately loses an un-shipped tail, so the
//     check is per-key prefix consistency: every key on the promoted
//     follower must hold some state from {converged state} ∪ {its
//     phase-2 acked history} ∪ {the single in-flight attempt}, and
//     nothing else may exist (zero phantoms). Initial-absent is NOT a
//     valid state for keys that converged present — regression
//     against a follower that silently dropped its bootstrap.
//
// Then the promoted follower must be fully live: it takes writes, a
// checkpoint, and (being durable) a local reopen passes the full
// structural check.
func runRepl(dur time.Duration, workers, shards, k, compressors int, dir string) {
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-repl")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	pdir := dir + "/primary"
	fdir := dir + "/follower"
	for _, d := range []string{pdir, fdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			fatal("mkdir", err)
		}
	}
	primary := spawnServer(shards, k, compressors, true, pdir, "", false, 0, 0)
	follower := spawnServer(shards, k, compressors, true, fdir, primary.addr, false, 0, 0)
	defer follower.stop()
	cl, err := client.Dial(primary.addr, client.Options{Conns: 2})
	if err != nil {
		fatal("dial primary", err)
	}
	clF, err := client.Dial(follower.addr, client.Options{Conns: 1})
	if err != nil {
		fatal("dial follower", err)
	}
	defer clF.Close()
	fmt.Printf("blinkstress repl: %d workers, shards=%d, k=%d, dir=%s\n", workers, shards, k, dir)
	fmt.Printf("      primary %s (pid %d) → follower %s (pid %d), %v\n",
		primary.addr, primary.cmd.Process.Pid, follower.addr, follower.cmd.Process.Pid, dur)

	const keysPer = 512
	type state struct {
		val     client.Value
		present bool
	}
	stride := ^uint64(0)/uint64(workers*keysPer) + 1
	key := func(raw uint64) client.Key { return client.Key(raw * stride) }
	ctx := context.Background()

	// A write to the follower must be refused while it follows.
	if _, _, err := clF.Upsert(ctx, key(0), 1); !errors.Is(err, client.ErrReadOnly) {
		fatal("follower read-only", fmt.Errorf("follower accepted a write before promotion: %v", err))
	}

	// --- Phase 1: stress, then converge and verify exactly. ---
	oracle := make([]map[uint64]state, workers)
	var ops atomic.Uint64
	runPhase := func(phaseDur time.Duration, fail func(w int, raw uint64, next state, err error) bool) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*104729 + 7))
				mine := oracle[w]
				for {
					select {
					case <-stop:
						return
					default:
					}
					raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
					cur := mine[raw]
					var next state
					var err error
					switch {
					case cur.present && rng.Intn(4) == 0:
						next = state{}
						err = cl.Delete(ctx, key(raw))
					case cur.present && rng.Intn(3) == 0:
						next = state{val: cur.val + 1, present: true}
						var swapped bool
						swapped, err = cl.CompareAndSwap(ctx, key(raw), cur.val, next.val)
						if err == nil && !swapped {
							fatal("repl cas", fmt.Errorf("key %d: mismatch against exact oracle", raw))
						}
					default:
						next = state{val: client.Value(rng.Uint64() | 1), present: true}
						_, _, err = cl.Upsert(ctx, key(raw), next.val)
					}
					if err != nil {
						if fail(w, raw, next, err) {
							return
						}
						continue
					}
					mine[raw] = next
					ops.Add(1)
				}
			}(w)
		}
		time.Sleep(phaseDur)
		close(stop)
		wg.Wait()
	}
	for w := range oracle {
		oracle[w] = make(map[uint64]state)
	}
	runPhase(dur/2, func(_ int, _ uint64, _ state, err error) bool {
		fatal("phase-1 workload", err)
		return true
	})

	// Convergence barrier: writes stopped, so the follower must drain
	// to exactly the oracle.
	total := 0
	for w := range oracle {
		for _, st := range oracle[w] {
			if st.present {
				total++
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		n, err := clF.Len(ctx)
		if err != nil {
			fatal("follower len", err)
		}
		if n == total {
			break
		}
		if time.Now().After(deadline) {
			fatal("convergence", fmt.Errorf("follower stuck at %d pairs, oracle has %d", n, total))
		}
		time.Sleep(20 * time.Millisecond)
	}
	verified := 0
	for w := range oracle {
		for raw, want := range oracle[w] {
			if !want.present {
				continue
			}
			v, err := clF.Search(ctx, key(raw))
			if err != nil || v != want.val {
				fatal("phase-1 verify", fmt.Errorf("key %d on follower: (%d, %v), want %d", raw, v, err, want.val))
			}
			verified++
		}
	}
	phantoms := 0
	if err := clF.Range(ctx, 0, client.Key(^uint64(0)), 0, func(kk client.Key, v client.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / keysPer
		if uint64(kk)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		if st := oracle[w][raw]; !st.present || st.val != v {
			phantoms++
			return false
		}
		return true
	}); err != nil {
		fatal("phase-1 scan", err)
	}
	if phantoms > 0 {
		fatal("phase-1 verify", fmt.Errorf("%d phantom pairs on the follower", phantoms))
	}
	fmt.Printf("      phase 1: follower converged to the oracle after %d acked ops: %d keys exact, 0 phantoms\n",
		ops.Load(), verified)

	// --- Phase 2: histories, kill -9, promote, prefix-verify. ---
	converged := make([]map[uint64]state, workers)
	histories := make([]map[uint64][]state, workers)
	attempt := make([]map[uint64]state, workers)
	for w := range oracle {
		converged[w] = make(map[uint64]state, len(oracle[w]))
		for raw, st := range oracle[w] {
			converged[w][raw] = st
		}
		histories[w] = make(map[uint64][]state)
		attempt[w] = make(map[uint64]state)
	}
	var histMu sync.Mutex
	var killed atomic.Bool
	phase2Fail := func(w int, raw uint64, next state, err error) bool {
		if !killed.Load() {
			fatal("phase-2 workload", err)
		}
		histMu.Lock()
		attempt[w][raw] = next
		histMu.Unlock()
		return true // primary is dead; worker exits
	}
	// The workers append each acked state to the key's history (the
	// oracle map stays the per-key current state).
	phase2 := func() {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*224737 + 13))
				mine := oracle[w]
				for {
					select {
					case <-stop:
						return
					default:
					}
					raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
					cur := mine[raw]
					var next state
					var err error
					switch {
					case cur.present && rng.Intn(4) == 0:
						next = state{}
						err = cl.Delete(ctx, key(raw))
					default:
						next = state{val: client.Value(rng.Uint64() | 1), present: true}
						_, _, err = cl.Upsert(ctx, key(raw), next.val)
					}
					if err != nil {
						if phase2Fail(w, raw, next, err) {
							return
						}
						continue
					}
					mine[raw] = next
					histories[w][raw] = append(histories[w][raw], next)
					ops.Add(1)
				}
			}(w)
		}
		time.Sleep(dur / 2)
		killed.Store(true)
		primary.kill9()
		close(stop)
		wg.Wait()
	}
	phase2()
	cl.Close()
	fmt.Printf("      phase 2: kill -9'd primary pid %d mid-traffic after %d total acked ops\n",
		primary.cmd.Process.Pid, ops.Load())

	// Failover: promote the follower.
	was, err := clF.Promote(ctx)
	if err != nil || !was {
		fatal("promote", fmt.Errorf("was=%v err=%v", was, err))
	}

	// Per-key prefix verification against converged ∪ history ∪ attempt.
	validStates := func(w int, raw uint64) []state {
		states := []state{converged[w][raw]}
		states = append(states, histories[w][raw]...)
		if alt, ok := attempt[w][raw]; ok {
			states = append(states, alt)
		}
		return states
	}
	matches := func(got state, states []state) bool {
		for _, st := range states {
			if got == st {
				return true
			}
		}
		return false
	}
	verified = 0
	for w := range oracle {
		for raw := range oracle[w] {
			v, err := clF.Search(ctx, key(raw))
			if err != nil && !errors.Is(err, blinktree.ErrNotFound) {
				fatal("phase-2 verify", err)
			}
			got := state{val: v, present: err == nil}
			if !got.present {
				got.val = 0
			}
			if !matches(got, validStates(w, raw)) {
				fatal("phase-2 verify", fmt.Errorf("key %d on promoted follower: %+v matches no acked state (converged %+v, %d history states, attempt %+v)",
					raw, got, converged[w][raw], len(histories[w][raw]), attempt[w][raw]))
			}
			verified++
		}
	}
	phantoms = 0
	if err := clF.Range(ctx, 0, client.Key(^uint64(0)), 0, func(kk client.Key, v client.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / keysPer
		if uint64(kk)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		if !matches(state{val: v, present: true}, validStates(w, raw)) {
			phantoms++
			return false
		}
		return true
	}); err != nil {
		fatal("phase-2 scan", err)
	}
	if phantoms > 0 {
		fatal("phase-2 verify", fmt.Errorf("%d phantom pairs on the promoted follower", phantoms))
	}

	// The promoted follower must be fully writable and durable.
	for i := uint64(0); i < 3000; i++ {
		raw := i % uint64(workers*keysPer)
		if _, _, err := clF.Upsert(ctx, key(raw), client.Value(i)); err != nil {
			fatal("post-promotion traffic", err)
		}
	}
	if err := clF.Checkpoint(ctx); err != nil {
		fatal("post-promotion checkpoint", err)
	}
	clF.Close()
	follower.stop()
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: k, Durable: true, Dir: fdir})
	if err != nil {
		fatal("local reopen", err)
	}
	defer r.Close()
	if err := r.Check(); err != nil {
		fatal("post-promotion check", err)
	}
	fmt.Printf("PASS: failover verified — %d oracle keys prefix-consistent on the promoted follower, 0 phantoms\n", verified)
	fmt.Printf("      promoted follower took %d writes + checkpoint; local reopen passes the structural check (%d pairs)\n",
		3000, r.Len())
}
