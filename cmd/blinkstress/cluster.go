package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
	"blinktree/client"
	"blinktree/internal/shard"
)

// pickAddr reserves a concrete loopback address by binding an
// ephemeral port and releasing it — cluster members need fixed
// addresses (the map names them) that survive a kill -9 restart.
func pickAddr() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("pick addr", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// runCluster is the -cluster mode: live shard migration between two
// real server processes, under load, with kill -9 crashes landing
// mid-migration on both sides. The precise claim:
//
//   - Two durable cluster members A and B (spawned processes on fixed
//     ports) start with A owning every range. A cluster-aware client
//     drives per-worker exact oracles: lastAcked is the state after
//     the newest acknowledged op, possible[] the attempts since then
//     that errored (each may or may not have been applied).
//   - Under full write load, half the ranges are migrated A→B. Writes
//     never fail during a healthy migration — the client rides the
//     fence via redirects — so the oracle stays exact throughout.
//   - A migration is started and the TARGET is kill -9'd mid-stream;
//     B restarts on the same address and directory and the migration
//     is re-triggered to completion. Then another migration is started
//     and the SOURCE is kill -9'd mid-stream; A restarts and the
//     migration is re-triggered. Both re-triggers must converge via
//     the handshake ("target already owns" → adopt) or a fresh
//     snapshot — every crash window resolves.
//   - After a settle pass (ambiguous keys rewritten to known values),
//     every acknowledged write must be readable through the cluster
//     map with its exact value, a full scan must find zero phantoms,
//     and Len must equal the oracle's key count.
//   - Both members are stopped gracefully and reopened locally: the
//     structural invariants must hold, every key must live on the
//     member the final map names (no duplicated or orphaned copies),
//     and the two local counts must sum to the oracle's.
//
// A non-zero exit means a lost acked write, a phantom, a duplicated
// range copy, or a migration that could not converge after a crash.
func runCluster(dur time.Duration, workers, shards, k, compressors int, dir string) {
	if shards < 2 {
		shards = 8 // migration needs multiple ranges
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-cluster")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	dirA, dirB := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	for _, d := range []string{dirA, dirB} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			fatal("mkdir", err)
		}
	}
	addrA, addrB := pickAddr(), pickAddr()
	spawnA := func() *child {
		return spawn(spawnOpts{
			shards: shards, k: k, compressors: compressors, durable: true,
			dir: dirA, addr: addrA, clusterSelf: addrA, clusterInitial: addrA,
		})
	}
	spawnB := func() *child {
		return spawn(spawnOpts{
			shards: shards, k: k, compressors: compressors, durable: true,
			dir: dirB, addr: addrB, clusterSelf: addrB, clusterInitial: addrA,
		})
	}
	chA, chB := spawnA(), spawnB()
	defer func() { chA.stop(); chB.stop() }()

	ctx := context.Background()
	cl, err := client.DialCluster(addrA, client.Options{Conns: 2})
	if err != nil {
		fatal("dial cluster", err)
	}
	defer cl.Close()
	if n, err := cl.Len(ctx); err != nil {
		fatal("len", err)
	} else if n != 0 {
		fatal("precondition", fmt.Errorf("cluster already holds %d pairs", n))
	}
	fmt.Printf("blinkstress cluster: %d workers, shards=%d, k=%d, A=%s B=%s, %v\n",
		workers, shards, k, addrA, addrB, dur)

	// Exact per-worker oracle over disjoint key slices, stretched over
	// the whole keyspace so every range takes traffic.
	const keysPer = 2048
	type cstate struct {
		val     client.Value
		present bool
	}
	lastAcked := make([]map[uint64]cstate, workers)
	possible := make([]map[uint64][]cstate, workers)
	stride := ^uint64(0)/uint64(workers*keysPer) + 1
	key := func(raw uint64) client.Key { return client.Key(raw * stride) }

	// Preload half the population so migrations have data to ship.
	for w := 0; w < workers; w++ {
		lastAcked[w] = make(map[uint64]cstate)
		possible[w] = make(map[uint64][]cstate)
	}
	var batch []client.Op
	flushPreload := func(raws []uint64) {
		results, err := cl.Batch(ctx, batch)
		if err != nil {
			fatal("preload", err)
		}
		for i, res := range results {
			if res.Err != nil {
				fatal("preload", res.Err)
			}
			raw := raws[i]
			lastAcked[int(raw)/keysPer][raw] = cstate{val: batch[i].Value, present: true}
		}
		batch = batch[:0]
	}
	var raws []uint64
	for raw := uint64(0); raw < uint64(workers*keysPer); raw += 2 {
		batch = append(batch, client.Op{Kind: client.OpUpsert, Key: key(raw), Value: client.Value(raw | 1)})
		raws = append(raws, raw)
		if len(batch) == 512 {
			flushPreload(raws)
			raws = raws[:0]
		}
	}
	if len(batch) > 0 {
		flushPreload(raws)
	}

	var ops, opErrs, readErrs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*10007 + 5))
			mine, amb := lastAcked[w], possible[w]
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw := uint64(w*keysPer) + uint64(rng.Intn(keysPer))
				cur := mine[raw]
				switch {
				case rng.Intn(4) == 0:
					v, err := cl.Search(ctx, key(raw))
					if err != nil && !errors.Is(err, blinktree.ErrNotFound) {
						// The cluster may be mid-kill; reads prove nothing
						// here, so skip the check but count the miss.
						readErrs.Add(1)
						time.Sleep(10 * time.Millisecond)
						continue
					}
					if len(amb[raw]) == 0 {
						got := cstate{val: v, present: err == nil}
						if got.present != cur.present || (cur.present && got.val != cur.val) {
							fatal("cluster search", fmt.Errorf(
								"key %d: got %+v, oracle %+v", raw, got, cur))
						}
					}
					ops.Add(1)
				case cur.present && rng.Intn(4) == 0:
					next := cstate{}
					if err := cl.Delete(ctx, key(raw)); err != nil {
						amb[raw] = append(amb[raw], next)
						opErrs.Add(1)
						time.Sleep(10 * time.Millisecond)
						continue
					}
					mine[raw] = next
					delete(amb, raw)
					ops.Add(1)
				default:
					next := cstate{val: client.Value(rng.Uint64() | 1), present: true}
					if _, _, err := cl.Upsert(ctx, key(raw), next.val); err != nil {
						amb[raw] = append(amb[raw], next)
						opErrs.Add(1)
						time.Sleep(10 * time.Millisecond)
						continue
					}
					mine[raw] = next
					delete(amb, raw)
					ops.Add(1)
				}
			}
		}(w)
	}
	// Checkpoints under load: StreamState and migration chase must
	// survive concurrent WAL truncation.
	ckptErrs := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		period := dur / 8
		if period < 200*time.Millisecond {
			period = 200 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := cl.Checkpoint(ctx); err != nil {
					ckptErrs++ // tolerated: a member may be mid-kill
				}
			}
		}
	}()

	ensureMigrated := func(sh int, target string) {
		deadline := time.Now().Add(60 * time.Second)
		for {
			err := cl.Migrate(ctx, sh, target)
			if err == nil {
				return
			}
			_ = cl.Refresh(ctx)
			if m := cl.Map(); m.Owners[sh] == target {
				return // handoff had already committed
			}
			if time.Now().After(deadline) {
				fatal("migrate", fmt.Errorf("range %d to %s would not converge: %v", sh, target, err))
			}
			time.Sleep(200 * time.Millisecond)
		}
	}

	// Phase 1: single-owner load.
	p1Start, p1Ops := time.Now(), ops.Load()
	time.Sleep(dur / 4)
	p1Rate := float64(ops.Load()-p1Ops) / time.Since(p1Start).Seconds()

	// Phase 2: rebalance the upper half of the keyspace onto B, live.
	migStart := time.Now()
	for sh := shards / 2; sh < shards; sh++ {
		ensureMigrated(sh, addrB)
	}
	fmt.Printf("      rebalanced ranges %d..%d onto B in %v under load\n",
		shards/2, shards-1, time.Since(migStart).Round(time.Millisecond))
	p2Start, p2Ops := time.Now(), ops.Load()
	time.Sleep(dur / 5)
	p2Rate := float64(ops.Load()-p2Ops) / time.Since(p2Start).Seconds()

	// Phase 3: kill -9 the TARGET mid-migration, restart, re-trigger.
	migDone := make(chan error, 1)
	go func() { migDone <- cl.Migrate(ctx, 0, addrB) }()
	time.Sleep(time.Duration(2+rand.Intn(15)) * time.Millisecond)
	chB.kill9()
	err = <-migDone
	fmt.Printf("      kill -9'd TARGET (pid %d) mid-migration of range 0 (migrate: %v)\n",
		chB.cmd.Process.Pid, err)
	chB = spawnB()
	ensureMigrated(0, addrB)
	fmt.Printf("      target restarted on %s; migration of range 0 converged\n", addrB)
	time.Sleep(dur / 8)

	// Phase 4: kill -9 the SOURCE mid-migration, restart, re-trigger.
	go func() { migDone <- cl.Migrate(ctx, 1, addrB) }()
	time.Sleep(time.Duration(2+rand.Intn(15)) * time.Millisecond)
	chA.kill9()
	err = <-migDone
	fmt.Printf("      kill -9'd SOURCE (pid %d) mid-migration of range 1 (migrate: %v)\n",
		chA.cmd.Process.Pid, err)
	chA = spawnA()
	ensureMigrated(1, addrB)
	fmt.Printf("      source restarted on %s; migration of range 1 converged\n", addrA)
	time.Sleep(dur / 5)

	close(stop)
	wg.Wait()

	// Settle: rewrite every ambiguous key to a known value so the
	// oracle is exact again (the cluster is healthy now, so these must
	// succeed).
	settled := 0
	for w := 0; w < workers; w++ {
		for raw := range possible[w] {
			v := client.Value(raw*2 + 1)
			var err error
			for i := 0; i < 100; i++ {
				if _, _, err = cl.Upsert(ctx, key(raw), v); err == nil {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			if err != nil {
				fatal("settle", err)
			}
			lastAcked[w][raw] = cstate{val: v, present: true}
			delete(possible[w], raw)
			settled++
		}
	}

	// Exact verification of every oracle key through the cluster map.
	verified, present := 0, 0
	for w := 0; w < workers; w++ {
		for raw, want := range lastAcked[w] {
			v, err := cl.Search(ctx, key(raw))
			if want.present {
				if err != nil || v != want.val {
					fatal("verify", fmt.Errorf("key %d: got (%d,%v), want %d", raw, v, err, want.val))
				}
				present++
			} else if !errors.Is(err, blinktree.ErrNotFound) {
				fatal("verify", fmt.Errorf("key %d: got (%d,%v), want absent", raw, v, err))
			}
			verified++
		}
	}
	// Zero phantoms: a full scan across both members finds only oracle
	// pairs with oracle values.
	phantoms := 0
	if err := cl.Range(ctx, 0, client.Key(^uint64(0)), 0, func(kk client.Key, v client.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / keysPer
		if uint64(kk)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		want := lastAcked[w][raw]
		if !want.present || want.val != v {
			phantoms++
			return false
		}
		return true
	}); err != nil {
		fatal("verify scan", err)
	}
	if phantoms > 0 {
		fatal("verify", fmt.Errorf("%d phantom pairs", phantoms))
	}
	if n, err := cl.Len(ctx); err != nil || n != present {
		fatal("verify", fmt.Errorf("Len=%d err=%v, oracle has %d present", n, err, present))
	}

	// The final map must reflect the rebalance plus both crash-tested
	// migrations.
	finalMap := cl.Map()
	ownerOf := func(sh int) string { return finalMap.Owners[sh] }
	for sh := 0; sh < shards; sh++ {
		want := addrA
		if sh == 0 || sh == 1 || sh >= shards/2 {
			want = addrB
		}
		if ownerOf(sh) != want {
			fatal("verify map", fmt.Errorf("range %d owned by %s, want %s (map v%d)",
				sh, ownerOf(sh), want, finalMap.Version))
		}
	}
	cstats := cl.Stats()
	cl.Close()
	chA.stop()
	chB.stop()

	// Local reopen of both members: structural invariants, and every
	// pair must live on exactly the member the final map names — no
	// duplicated or orphaned copies of migrated ranges.
	localTotal := 0
	for _, m := range []struct{ dir, addr, name string }{
		{dirA, addrA, "A"}, {dirB, addrB, "B"},
	} {
		r, err := shard.NewRouter(shards, shard.Options{MinPairs: k, Durable: true, Dir: m.dir})
		if err != nil {
			fatal("local reopen "+m.name, err)
		}
		if err := r.Check(); err != nil {
			fatal("local check "+m.name, err)
		}
		misplaced := 0
		if err := r.Range(0, blinktree.Key(^uint64(0)), func(kk blinktree.Key, _ blinktree.Value) bool {
			if ownerOf(finalMap.Range(uint64(kk))) != m.addr {
				misplaced++
			}
			return true
		}); err != nil {
			fatal("local scan "+m.name, err)
		}
		if misplaced > 0 {
			fatal("verify", fmt.Errorf("member %s holds %d pairs of ranges it does not own", m.name, misplaced))
		}
		localTotal += r.Len()
		r.Close()
	}
	if localTotal != present {
		fatal("verify", fmt.Errorf("local copies sum to %d pairs, oracle has %d — lost or duplicated data", localTotal, present))
	}

	fmt.Printf("PASS: %d ops, %d oracle keys verified (%d settled after %d op errors), 0 phantoms, 0 misplaced pairs\n",
		ops.Load(), verified, settled, opErrs.Load())
	fmt.Printf("      map v%d: B owns ranges 0,1,%d..%d; throughput %.0f ops/s one node → %.0f ops/s rebalanced\n",
		finalMap.Version, shards/2, shards-1, p1Rate, p2Rate)
	fmt.Printf("      client: %d redirects, %d map installs, %d retries, %d read misses during kills, %d checkpoint misses\n",
		cstats.Redirects, cstats.MapInstalls, cstats.Retries, readErrs.Load(), ckptErrs)
}
