package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
	"blinktree/client"
	"blinktree/internal/shard"
)

// Disk-native campaign geometry. Small pages make the tree page-count
// large at stress-sized key populations, so a fractional cache budget
// leaves most of the index on disk and every traversal races eviction.
const (
	diskKeysPer  = 1024
	diskPageSize = 256
	diskPairs    = 16 // encoded bytes per key/value pair
)

// runDisk is the -disk mode: the acceptance campaign for disk-native
// serving. A real spawned server process serves a durable index
// through the bounded buffer pool, with the pool budget set to
// cacheRatio of the expected dataset (so at the default 10% roughly
// nine of every ten pages live only in the page file). The claim
// verified:
//
//   - under a concurrent oracle-checked workload — point ops plus
//     range scans that exercise read-ahead — every read observes
//     exactly the oracle state, cache misses and all;
//   - after a kill -9 mid-run, recovery on the same directory is
//     prefix-consistent over the wire: every acknowledged op present,
//     zero phantoms, exactly as in the in-memory durable mode (the
//     torn page files must contribute nothing);
//   - the recovered index takes traffic, passes the structural
//     invariants on a local reopen, and the pool demonstrably churned
//     (evictions > 0, residency within budget).
func runDisk(dur time.Duration, workers, shards, k, compressors int, dir string, cacheRatio float64) {
	if shards < 1 {
		fatal("disk", fmt.Errorf("-shards %d: need at least 1", shards))
	}
	if cacheRatio <= 0 || cacheRatio > 1 {
		fatal("disk", fmt.Errorf("-cache-ratio %g: need (0,1]", cacheRatio))
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-disk")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	// Budget the pool against the expected on-disk footprint: pairs at
	// ~50% page fill (leaves average between MinPairs and MaxPairs,
	// plus internal levels). The pool floor of 4 frames still applies.
	totalKeys := workers * diskKeysPer
	estBytes := int64(float64(totalKeys) * diskPairs / 0.5)
	cacheBytes := int64(cacheRatio * float64(estBytes) / float64(shards))
	if min := int64(4 * diskPageSize); cacheBytes < min {
		cacheBytes = min
	}

	ch := spawnServer(shards, k, compressors, true, dir, "", true, cacheBytes, diskPageSize)
	cl, err := client.Dial(ch.addr, client.Options{Conns: 2, RetryReads: -1})
	if err != nil {
		fatal("dial", err)
	}
	fmt.Printf("blinkstress disk: %d workers, shards=%d, k=%d, keys=%d (~%d KiB), cache=%d KiB/shard (ratio %.2f), dir=%s, server=%s (pid %d), %v\n",
		workers, shards, k, totalKeys, estBytes>>10, cacheBytes>>10, cacheRatio,
		dir, ch.addr, ch.cmd.Process.Pid, dur)

	type state struct {
		val     client.Value
		present bool
	}
	lastAcked := make([]map[uint64]state, workers)
	attempt := make([]map[uint64]state, workers)
	stride := ^uint64(0)/uint64(totalKeys) + 1
	key := func(raw uint64) client.Key { return client.Key(raw * stride) }
	ctx := context.Background()

	// Preload the full key population so the dataset outweighs the
	// cache before the stress begins: from here on the server cannot
	// answer from residency alone.
	for w := 0; w < workers; w++ {
		lastAcked[w] = make(map[uint64]state)
		attempt[w] = make(map[uint64]state)
	}
	var pwg sync.WaitGroup
	var preloadErr atomic.Value
	for w := 0; w < workers; w++ {
		pwg.Add(1)
		go func(w int) {
			defer pwg.Done()
			for i := 0; i < diskKeysPer; i++ {
				raw := uint64(w*diskKeysPer + i)
				v := client.Value(raw | 1)
				if _, _, err := cl.Upsert(ctx, key(raw), v); err != nil {
					preloadErr.Store(err)
					return
				}
				lastAcked[w][raw] = state{val: v, present: true}
			}
		}(w)
	}
	pwg.Wait()
	if err := preloadErr.Load(); err != nil {
		fatal("preload", err.(error))
	}

	var ops, scans atomic.Uint64
	var killed atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 17))
			base := uint64(w * diskKeysPer)
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw := base + uint64(rng.Intn(diskKeysPer))
				cur := lastAcked[w][raw]
				var next state
				var err error
				switch {
				case rng.Intn(10) == 0:
					// Ordered scan of a chunk of this worker's own slice:
					// the cursor path, read-ahead included, checked exactly
					// (nobody else mutates these keys).
					lo := base + uint64(rng.Intn(diskKeysPer))
					hi := lo + 64
					if hi > base+diskKeysPer {
						hi = base + diskKeysPer
					}
					err = cl.Range(ctx, key(lo), key(hi-1)+1, 0, func(kk client.Key, v client.Value) bool {
						raw := uint64(kk) / stride
						if st, ok := lastAcked[w][raw]; !ok || !st.present || st.val != v {
							fatal("disk scan", fmt.Errorf("key %d: scan sees %d, oracle %+v", raw, v, lastAcked[w][raw]))
						}
						return true
					})
					if err == nil {
						scans.Add(1)
						continue
					}
					// A scan that failed mid-crash proves nothing; drop it.
					if killed.Load() {
						return
					}
					fatal("disk scan", err)
				case cur.present && rng.Intn(4) == 0:
					next = state{}
					err = cl.Delete(ctx, key(raw))
				case cur.present && rng.Intn(3) == 0:
					next = state{val: cur.val + 1, present: true}
					var swapped bool
					swapped, err = cl.CompareAndSwap(ctx, key(raw), cur.val, next.val)
					if err == nil && !swapped {
						fatal("disk cas", fmt.Errorf("key %d: mismatch against exact oracle", raw))
					}
				case rng.Intn(3) == 0:
					var v client.Value
					v, err = cl.Search(ctx, key(raw))
					if err == nil {
						if !cur.present || v != cur.val {
							fatal("disk search", fmt.Errorf("key %d: got %d, oracle %+v", raw, v, cur))
						}
						ops.Add(1)
						continue
					}
					if errors.Is(err, blinktree.ErrNotFound) {
						if cur.present {
							fatal("disk search", fmt.Errorf("key %d: absent, oracle %+v", raw, cur))
						}
						ops.Add(1)
						continue
					}
					if killed.Load() {
						return
					}
					fatal("disk search", err)
				default:
					next = state{val: client.Value(rng.Uint64() | 1), present: true}
					_, _, err = cl.Upsert(ctx, key(raw), next.val)
				}
				if err != nil {
					if !killed.Load() {
						fatal("disk workload", err)
					}
					attempt[w][raw] = next
					return
				}
				lastAcked[w][raw] = next
				ops.Add(1)
			}
		}(w)
	}
	// Checkpoints while traffic flows: each one snapshots tree state
	// *through* the pool, with most pages non-resident.
	ckpts := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		period := dur / 8
		if period < 200*time.Millisecond {
			period = 200 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if err := cl.Checkpoint(ctx); err != nil {
					if !killed.Load() {
						fatal("disk checkpoint", err)
					}
					return
				}
				ckpts++
			}
		}
	}()

	time.Sleep(dur / 2)
	killed.Store(true)
	ch.kill9()
	close(stop)
	wg.Wait()
	cl.Close()
	fmt.Printf("      kill -9'd server pid %d after %d acked ops (%d oracle scans), %d checkpoints\n",
		ch.cmd.Process.Pid, ops.Load(), scans.Load(), ckpts)

	// Restart on the same directory. The page files hold whatever
	// write-back happened to be mid-flight at the kill; recovery must
	// ignore them entirely and rebuild from checkpoint + log suffix.
	ch2 := spawnServer(shards, k, compressors, true, dir, "", true, cacheBytes, diskPageSize)
	cl2, err := client.Dial(ch2.addr, client.Options{Conns: 2})
	if err != nil {
		fatal("redial", err)
	}
	verified := 0
	for w := 0; w < workers; w++ {
		for raw, want := range lastAcked[w] {
			v, err := cl2.Search(ctx, key(raw))
			if err != nil && !errors.Is(err, blinktree.ErrNotFound) {
				fatal("verify", err)
			}
			got := state{val: v, present: err == nil}
			if got == want {
				verified++
				continue
			}
			if alt, ok := attempt[w][raw]; ok && got == alt {
				verified++ // the in-flight op's record survived the crash
				continue
			}
			fatal("verify", fmt.Errorf("key %d: recovered %+v, acked %+v, attempt %+v",
				raw, got, want, attempt[w][raw]))
		}
	}
	phantoms := 0
	if err := cl2.Range(ctx, 0, client.Key(^uint64(0)), 0, func(kk client.Key, v client.Value) bool {
		raw := uint64(kk) / stride
		w := int(raw) / diskKeysPer
		if uint64(kk)%stride != 0 || w < 0 || w >= workers {
			phantoms++
			return false
		}
		got := state{val: v, present: true}
		if got != lastAcked[w][raw] {
			if alt, ok := attempt[w][raw]; !ok || got != alt {
				phantoms++
				return false
			}
		}
		return true
	}); err != nil {
		fatal("verify scan", err)
	}
	if phantoms > 0 {
		fatal("verify", fmt.Errorf("%d phantom pairs survived recovery", phantoms))
	}

	// The recovered server must be fully live through the pool: more
	// traffic and a checkpoint, then a graceful stop and a local reopen
	// for the structural invariants and the pool's own accounting.
	for i := uint64(0); i < 3000; i++ {
		raw := i % uint64(totalKeys)
		if _, _, err := cl2.Upsert(ctx, key(raw), client.Value(i|1)); err != nil {
			fatal("post-recovery traffic", err)
		}
	}
	if err := cl2.Checkpoint(ctx); err != nil {
		fatal("post-recovery checkpoint", err)
	}
	cl2.Close()
	ch2.stop()

	r, err := shard.NewRouter(shards, shard.Options{
		MinPairs: k, Durable: true, Dir: dir,
		DiskNative: true, CacheBytes: cacheBytes, PageSize: diskPageSize,
	})
	if err != nil {
		fatal("local reopen", err)
	}
	defer r.Close()
	if err := r.Check(); err != nil {
		fatal("post-recovery check", err)
	}
	st, err := r.Stats()
	if err != nil {
		fatal("stats", err)
	}
	if !st.Pooled {
		fatal("pool", fmt.Errorf("local reopen is not pool-backed"))
	}
	// Recovery replay alone walks the whole tree through the tiny
	// cache, so a pool that never evicted means the budget did not bind
	// and the campaign proved nothing.
	if st.Pool.Evictions == 0 {
		fatal("pool", fmt.Errorf("no evictions with cache ratio %.2f — dataset fit in the pool: %+v", cacheRatio, st.Pool))
	}
	if st.Pool.Resident > st.Pool.Capacity {
		fatal("pool", fmt.Errorf("resident %d frames exceeds capacity %d", st.Pool.Resident, st.Pool.Capacity))
	}
	fmt.Printf("PASS: %d oracle keys verified over the wire after kill -9, 0 phantoms\n", verified)
	fmt.Printf("      final state: %d pairs; recovery replayed %d records above the last checkpoint\n",
		r.Len(), st.WAL.Replayed)
	fmt.Printf("      pool (local reopen, %d shards): capacity %d frames/shard-summed, %d hits / %d misses, %d evictions, %d writebacks, pinned high-water %d\n",
		shards, st.Pool.Capacity, st.Pool.Hits, st.Pool.Misses,
		st.Pool.Evictions, st.Pool.Writebacks, st.Pool.PinnedHighWater)
}
