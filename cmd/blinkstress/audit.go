package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"blinktree/client"
)

// runAudit is the -audit mode: the end-to-end proof that verified
// replication detects corruption that checksums cannot. It runs a real
// verified primary + follower pair, then repeatedly corrupts the
// follower's durable state on disk — one value byte in a checkpoint
// snapshot or a WAL record, with the enclosing CRC RECOMPUTED so the
// corruption is checksum-clean — and demands that every injection is
// caught:
//
//   - checkpoint tampering must be refused at recovery (the stored
//     state root no longer matches the snapshot's recomputed root);
//   - WAL tampering survives recovery (the root file does not cover
//     the log suffix) but must trip the state-root divergence alarm at
//     the next root the primary publishes, after which the follower
//     refuses to replicate.
//
// A clean control restart between the tamper trials must come up
// without any alarm and keep replicating — zero false positives.
func runAudit(shards, k, compressors int, dir string) {
	if dir == "" {
		d, err := os.MkdirTemp("", "blinkstress-audit")
		if err != nil {
			fatal("tmpdir", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	pdir := filepath.Join(dir, "primary")
	fdir := filepath.Join(dir, "follower")
	pristine := filepath.Join(dir, "pristine")
	for _, d := range []string{pdir, fdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			fatal("mkdir", err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()

	primary := spawn(spawnOpts{shards: shards, k: k, compressors: compressors,
		durable: true, dir: pdir, verified: true})
	defer primary.stop()
	cl, err := client.Dial(primary.addr, client.Options{Conns: 2})
	if err != nil {
		fatal("dial primary", err)
	}
	defer cl.Close()
	fmt.Printf("blinkstress audit: shards=%d, k=%d, dir=%s\n", shards, k, dir)
	fmt.Printf("      primary %s (pid %d), verified\n", primary.addr, primary.cmd.Process.Pid)

	// Load a base population, spread over the keyspace so every shard
	// holds pairs in both its checkpoint and its WAL suffix.
	const base, suffix = 4000, 500
	stride := ^uint64(0)/(base+suffix) + 1
	key := func(i uint64) client.Key { return client.Key(i * stride) }
	for i := uint64(0); i < base; i++ {
		if err := cl.Insert(ctx, key(i), client.Value(i)); err != nil {
			fatal("load", err)
		}
	}

	// --- Clean phase: follower replicates, roots agree, no alarms. ---
	var fstderr lockedBuf
	follower, err := trySpawn(spawnOpts{shards: shards, k: k, compressors: compressors,
		durable: true, dir: fdir, follow: primary.addr, verified: true, stderr: &fstderr})
	if err != nil {
		fatal("spawn follower", err)
	}
	clF := dialFollower(follower)
	waitRootsEqual(ctx, cl, clF, "initial convergence")
	for i := uint64(0); i < 1000; i++ { // live-stream traffic under root checks
		if _, _, err := cl.Upsert(ctx, key(i), client.Value(i*3+1)); err != nil {
			fatal("stream", err)
		}
	}
	waitRootsEqual(ctx, cl, clF, "post-stream convergence")
	// Checkpoint the follower so its directory holds a root-covered
	// snapshot, then append a WAL suffix of once-written fresh keys
	// (each key exactly once, so a tampered suffix record can never be
	// masked by a later record for the same key).
	if err := clF.Checkpoint(ctx); err != nil {
		fatal("follower checkpoint", err)
	}
	for i := uint64(base); i < base+suffix; i++ {
		if err := cl.Insert(ctx, key(i), client.Value(i)); err != nil {
			fatal("suffix", err)
		}
	}
	waitRootsEqual(ctx, cl, clF, "suffix convergence")
	if s := fstderr.String(); strings.Contains(s, "divergence") {
		fatal("audit", fmt.Errorf("false alarm on a clean run:\n%s", s))
	}
	clF.Close()
	follower.stop()
	if err := copyDir(fdir, pristine); err != nil {
		fatal("snapshot follower dir", err)
	}

	// --- Trials. ---
	detected := 0
	trials := 0
	sentinel := client.Key(^uint64(0) - 1)
	restore := func() {
		if err := os.RemoveAll(fdir); err != nil {
			fatal("restore", err)
		}
		if err := copyDir(pristine, fdir); err != nil {
			fatal("restore", err)
		}
	}

	// Control: a clean restart must come up, stay silent, and still
	// replicate new writes.
	restore()
	fstderr.Reset()
	follower, err = trySpawn(spawnOpts{shards: shards, k: k, compressors: compressors,
		durable: true, dir: fdir, follow: primary.addr, verified: true, stderr: &fstderr})
	if err != nil {
		fatal("audit control", fmt.Errorf("clean restart refused: %v\n%s", err, fstderr.String()))
	}
	clF = dialFollower(follower)
	if _, _, err := cl.Upsert(ctx, sentinel, 1); err != nil {
		fatal("audit control", err)
	}
	waitRootsEqual(ctx, cl, clF, "control replication")
	if s := fstderr.String(); strings.Contains(s, "divergence") {
		fatal("audit control", fmt.Errorf("false alarm on clean restart:\n%s", s))
	}
	fmt.Println("      control: clean restart replicates, no alarm")
	clF.Close()
	follower.stop()

	const perKind = 3
	for trial := 0; trial < 2*perKind; trial++ {
		restore()
		fstderr.Reset()
		tamperSnap := trial < perKind
		var target string
		if tamperSnap {
			target, err = tamperCheckpoint(fdir, rng)
		} else {
			target, err = tamperWAL(fdir, rng)
		}
		if err != nil {
			fatal("tamper", err)
		}
		trials++
		follower, err = trySpawn(spawnOpts{shards: shards, k: k, compressors: compressors,
			durable: true, dir: fdir, follow: primary.addr, verified: true, stderr: &fstderr})
		if tamperSnap {
			// Recovery itself must refuse the doctored snapshot.
			if err == nil {
				follower.stop()
				fatal("audit", fmt.Errorf("tampered checkpoint %s was recovered without complaint", target))
			}
			if !strings.Contains(fstderr.String(), "state root mismatch") {
				fatal("audit", fmt.Errorf("tampered checkpoint %s refused, but not by the root check:\n%s", target, fstderr.String()))
			}
			detected++
			fmt.Printf("      trial %d: checkpoint tamper (%s) refused at recovery\n", trial+1, filepath.Base(target))
			continue
		}
		// WAL tamper: recovery accepts it (the CRC is valid and the
		// root file does not cover the suffix), so detection must come
		// from the replication root check.
		if err != nil {
			fatal("audit", fmt.Errorf("tampered WAL %s: follower did not start: %v\n%s", target, err, fstderr.String()))
		}
		deadline := time.Now().Add(30 * time.Second)
		for !strings.Contains(fstderr.String(), "divergence") {
			if time.Now().After(deadline) {
				follower.stop()
				fatal("audit", fmt.Errorf("tampered WAL %s: no divergence alarm within 30s:\n%s", target, fstderr.String()))
			}
			time.Sleep(20 * time.Millisecond)
		}
		// Refusal: after the alarm the follower must stop replicating.
		clF = dialFollower(follower)
		if _, _, err := cl.Upsert(ctx, sentinel, client.Value(100+trial)); err != nil {
			fatal("audit", err)
		}
		time.Sleep(750 * time.Millisecond)
		if v, err := clF.Search(ctx, sentinel); err == nil && v == client.Value(100+trial) {
			fatal("audit", fmt.Errorf("tampered WAL %s: follower kept replicating after the alarm", target))
		}
		detected++
		fmt.Printf("      trial %d: WAL tamper (%s) detected at a published root, replication refused\n",
			trial+1, filepath.Base(target))
		clF.Close()
		follower.stop()
	}

	if detected != trials {
		fatal("audit", fmt.Errorf("detected %d of %d injected tamperings", detected, trials))
	}
	fmt.Printf("PASS: %d/%d checksum-clean tamperings detected (%d checkpoint, %d WAL), zero false alarms\n",
		detected, trials, perKind, perKind)
}

// dialFollower connects to a just-spawned follower child.
func dialFollower(c *child) *client.Client {
	cl, err := client.Dial(c.addr, client.Options{Conns: 1})
	if err != nil {
		fatal("dial follower", err)
	}
	return cl
}

// waitRootsEqual polls until the follower has converged on the primary
// — both quiescent, so equality of the two served state roots is the
// strongest possible statement: byte-identical logical content.
func waitRootsEqual(ctx context.Context, cl, clF *client.Client, what string) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		pr, err1 := cl.Root(ctx)
		fr, err2 := clF.Root(ctx)
		if err1 == nil && err2 == nil && pr == fr {
			return
		}
		if time.Now().After(deadline) {
			fatal("audit", fmt.Errorf("%s: roots did not converge (primary %x follower %x, errs %v %v)",
				what, pr[:8], fr[:8], err1, err2))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tamperCheckpoint flips one value byte in one pair of one shard's
// checkpoint snapshot and REWRITES the footer CRC so the file is
// checksum-valid: only the Merkle root can tell it changed. Returns
// the path tampered with.
func tamperCheckpoint(dir string, rng *rand.Rand) (string, error) {
	const headerLen, pairLen, footerLen = 16, 16, 12
	path, err := pickFile(dir, "checkpoint-", ".snap", headerLen+pairLen+footerLen)
	if err != nil {
		return "", err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	pairs := (len(b) - headerLen - footerLen) / pairLen
	i := rng.Intn(pairs)
	b[headerLen+i*pairLen+8+rng.Intn(8)] ^= 0xff // a value byte
	// The footer CRC covers header + pairs (the count field is outside
	// it — see internal/snap).
	crc := crc32.ChecksumIEEE(b[:len(b)-footerLen])
	binary.LittleEndian.PutUint32(b[len(b)-4:], crc)
	return path, os.WriteFile(path, b, 0o644)
}

// tamperWAL flips one value byte in one record of one shard's WAL
// segment and recomputes that record's CRC-32C, so replay accepts it
// and recovery succeeds with silently diverged state. Returns the path
// tampered with.
func tamperWAL(dir string, rng *rand.Rand) (string, error) {
	const segHeaderLen, recHeaderLen, payloadLen = 16, 8, 17
	const recLen = recHeaderLen + payloadLen
	path, err := pickFile(dir, "wal-", ".seg", segHeaderLen+recLen)
	if err != nil {
		return "", err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	recs := (len(b) - segHeaderLen) / recLen
	off := segHeaderLen + rng.Intn(recs)*recLen
	payload := b[off+recHeaderLen : off+recHeaderLen+payloadLen]
	payload[9+rng.Intn(8)] ^= 0xff // a value byte
	crc := crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(b[off+4:off+8], crc)
	return path, os.WriteFile(path, b, 0o644)
}

// pickFile finds a file matching prefix/suffix of at least minSize
// somewhere under dir (shard subdirectories included).
func pickFile(dir, prefix, suffix string, minSize int64) (string, error) {
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || found != "" || info.IsDir() {
			return err
		}
		name := filepath.Base(path)
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, suffix) && info.Size() >= minSize {
			found = path
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if found == "" {
		return "", fmt.Errorf("no %s*%s of at least %d bytes under %s", prefix, suffix, minSize, dir)
	}
	return found, nil
}

// copyDir recursively copies src into dst (created fresh).
func copyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, in); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
}

// lockedBuf is a concurrency-safe byte buffer for capturing a child
// process's stderr while the parent polls it.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func (l *lockedBuf) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.b.Reset()
}
