// Command benchcompare gates E-series performance regressions: it
// compares two sagivbench -json reports and exits non-zero when any
// throughput cell in the latest run falls more than a threshold below
// the committed baseline, or any allocation cell rises more than a
// threshold above it.
//
// Usage:
//
//	benchcompare -baseline BENCH_baseline.json -latest results.json
//
// The throughput threshold is -max-regression-pct, overridable with
// the BENCH_MAX_REGRESSION_PCT environment variable (default 15 —
// E-series runs at CI scale are noisy; the gate is for cliffs, not
// jitter). The allocation threshold is -max-alloc-regression-pct /
// BENCH_MAX_ALLOC_REGRESSION_PCT (default 15, plus one absolute
// alloc/op of slack so near-zero baselines don't trip on a single
// stray allocation).
//
// What counts as a throughput cell: a numeric cell whose column header
// contains "ops/s", or any numeric non-config cell of a table whose
// title announces ops/s. An allocation cell is one whose column
// header contains "allocs/op" (B/op columns ride along informationally
// but are not gated — bytes track allocs). Cells are matched by
// (experiment, table title, first cell of the row, column header);
// pairs present in only one report are reported but never fail the
// gate, so adding an experiment or a row does not require regenerating
// the baseline — only a *shape change* to an existing table does (see
// scripts/bench-update.sh).
//
// Baselines and comparison runs must come from the same machine class
// (same GOMAXPROCS at minimum — the tool warns on a mismatch) or the
// comparison is meaningless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// report mirrors sagivbench's -json document.
type report struct {
	Go          string  `json:"go"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Scale       float64 `json:"scale"`
	Experiments []struct {
		ID     string `json:"id"`
		Tables []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	} `json:"experiments"`
}

// cellKey identifies one throughput measurement across runs.
type cellKey struct {
	exp, table, config, column string
}

// load reads and decodes one report.
func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// throughputCells extracts every throughput cell of a report.
func throughputCells(r *report) map[cellKey]float64 {
	out := make(map[cellKey]float64)
	for _, exp := range r.Experiments {
		for _, tbl := range exp.Tables {
			titleTput := strings.Contains(tbl.Title, "ops/s")
			for _, row := range tbl.Rows {
				if len(row) == 0 {
					continue
				}
				for i, cell := range row {
					if i == 0 || i >= len(tbl.Headers) {
						continue
					}
					if strings.Contains(tbl.Headers[i], "allocs/op") || strings.Contains(tbl.Headers[i], "B/op") {
						continue // allocation columns gate separately
					}
					if !strings.Contains(tbl.Headers[i], "ops/s") && !titleTput {
						continue
					}
					v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
					if err != nil || v <= 0 {
						continue
					}
					out[cellKey{exp.ID, tbl.Title, row[0], tbl.Headers[i]}] = v
				}
			}
		}
	}
	return out
}

// allocCells extracts every allocation-rate cell (columns headed
// "allocs/op") of a report. Zero is a valid value here — a zero-alloc
// steady state is exactly what the gate protects.
func allocCells(r *report) map[cellKey]float64 {
	out := make(map[cellKey]float64)
	for _, exp := range r.Experiments {
		for _, tbl := range exp.Tables {
			for _, row := range tbl.Rows {
				if len(row) == 0 {
					continue
				}
				for i, cell := range row {
					if i == 0 || i >= len(tbl.Headers) || !strings.Contains(tbl.Headers[i], "allocs/op") {
						continue
					}
					v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
					if err != nil || v < 0 {
						continue
					}
					out[cellKey{exp.ID, tbl.Title, row[0], tbl.Headers[i]}] = v
				}
			}
		}
	}
	return out
}

// pctEnv overrides *pct from the named environment variable.
func pctEnv(name string, pct *float64) {
	env := os.Getenv(name)
	if env == "" {
		return
	}
	v, err := strconv.ParseFloat(env, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: bad %s %q: %v\n", name, env, err)
		os.Exit(2)
	}
	*pct = v
}

// sortedKeys returns the union of both maps' keys in deterministic
// report order.
func sortedKeys(a, b map[cellKey]float64) []cellKey {
	seen := make(map[cellKey]bool, len(a)+len(b))
	keys := make([]cellKey, 0, len(a)+len(b))
	for k := range a {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.exp != b.exp {
			return a.exp < b.exp
		}
		if a.table != b.table {
			return a.table < b.table
		}
		if a.config != b.config {
			return a.config < b.config
		}
		return a.column < b.column
	})
	return keys
}

// printDeltas renders the full baseline/latest comparison as an
// aligned table, one row per cell present in either report.
func printDeltas(unit string, baseCells, latestCells map[cellKey]float64) {
	fmt.Printf("%-4s  %-28s  %-16s  %12s  %12s  %8s\n", "exp", "config", "column", "baseline", "latest", "delta")
	for _, k := range sortedKeys(baseCells, latestCells) {
		b, inBase := baseCells[k]
		l, inLatest := latestCells[k]
		switch {
		case !inLatest:
			fmt.Printf("%-4s  %-28s  %-16s  %12.1f  %12s  %8s\n", k.exp, k.config, k.column, b, "-", "gone")
		case !inBase:
			fmt.Printf("%-4s  %-28s  %-16s  %12s  %12.1f  %8s\n", k.exp, k.config, k.column, "-", l, "new")
		default:
			delta := 0.0
			if b != 0 {
				delta = (l - b) / b * 100
			}
			fmt.Printf("%-4s  %-28s  %-16s  %12.1f  %12.1f  %+7.1f%%\n", k.exp, k.config, k.column, b, l, delta)
		}
	}
	_ = unit
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	latestPath := flag.String("latest", "", "report to gate (required)")
	maxPct := flag.Float64("max-regression-pct", 15, "fail when a throughput cell drops more than this percent below baseline (env BENCH_MAX_REGRESSION_PCT overrides)")
	maxAllocPct := flag.Float64("max-alloc-regression-pct", 15, "fail when an allocs/op cell rises more than this percent (plus 1 alloc/op of slack) above baseline (env BENCH_MAX_ALLOC_REGRESSION_PCT overrides)")
	deltas := flag.Bool("deltas", false, "print the full per-cell delta table, not just regressions")
	flag.Parse()
	pctEnv("BENCH_MAX_REGRESSION_PCT", maxPct)
	pctEnv("BENCH_MAX_ALLOC_REGRESSION_PCT", maxAllocPct)
	if *latestPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -latest required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	latest, err := load(*latestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	if base.GOMAXPROCS != latest.GOMAXPROCS {
		fmt.Printf("warning: GOMAXPROCS differs (baseline %d, latest %d) — comparison is cross-machine\n",
			base.GOMAXPROCS, latest.GOMAXPROCS)
	}
	if base.Scale != latest.Scale {
		fmt.Printf("warning: scale differs (baseline %g, latest %g)\n", base.Scale, latest.Scale)
	}

	baseCells := throughputCells(base)
	latestCells := throughputCells(latest)
	compared, onlyBase, onlyLatest, failures := 0, 0, 0, 0
	for key, b := range baseCells {
		l, ok := latestCells[key]
		if !ok {
			onlyBase++
			continue
		}
		compared++
		delta := (l - b) / b * 100
		if -delta > *maxPct {
			failures++
			fmt.Printf("REGRESSION %s / %q / %s / %s: %.0f -> %.0f ops/s (%.1f%%, limit -%.0f%%)\n",
				key.exp, key.table, key.config, key.column, b, l, delta, *maxPct)
		}
	}
	for key := range latestCells {
		if _, ok := baseCells[key]; !ok {
			onlyLatest++
		}
	}

	// Allocation gate: allocs/op must not rise. The one-alloc absolute
	// slack keeps near-zero baselines from tripping on measurement
	// noise (one stray allocation against a 2-allocs/op baseline is
	// +50% but means nothing).
	baseAllocs := allocCells(base)
	latestAllocs := allocCells(latest)
	allocCompared, allocFailures := 0, 0
	for key, b := range baseAllocs {
		l, ok := latestAllocs[key]
		if !ok {
			onlyBase++
			continue
		}
		allocCompared++
		if l > b*(1+*maxAllocPct/100)+1 {
			allocFailures++
			fmt.Printf("ALLOC REGRESSION %s / %q / %s / %s: %.1f -> %.1f allocs/op (limit +%.0f%% +1)\n",
				key.exp, key.table, key.config, key.column, b, l, *maxAllocPct)
		}
	}
	for key := range latestAllocs {
		if _, ok := baseAllocs[key]; !ok {
			onlyLatest++
		}
	}

	if *deltas {
		fmt.Println()
		printDeltas("ops/s", baseCells, latestCells)
		if len(baseAllocs)+len(latestAllocs) > 0 {
			fmt.Println()
			printDeltas("allocs/op", baseAllocs, latestAllocs)
		}
		fmt.Println()
	}

	fmt.Printf("benchcompare: %d throughput cells compared (%d regressions beyond %.0f%%), %d alloc cells compared (%d regressions), %d baseline-only, %d new\n",
		compared, failures, *maxPct, allocCompared, allocFailures, onlyBase, onlyLatest)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no comparable throughput cells — wrong files?")
		os.Exit(2)
	}
	if failures+allocFailures > 0 {
		os.Exit(1)
	}
}
