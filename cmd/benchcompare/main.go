// Command benchcompare gates E-series throughput regressions: it
// compares two sagivbench -json reports and exits non-zero when any
// throughput cell in the latest run falls more than a threshold below
// the committed baseline.
//
// Usage:
//
//	benchcompare -baseline BENCH_baseline.json -latest results.json
//
// The threshold is -max-regression-pct, overridable with the
// BENCH_MAX_REGRESSION_PCT environment variable (default 15 — E-series
// runs at CI scale are noisy; the gate is for cliffs, not jitter).
//
// What counts as a throughput cell: a numeric cell whose column header
// contains "ops/s", or any numeric non-config cell of a table whose
// title announces ops/s. Cells are matched by (experiment, table
// title, first cell of the row, column header); pairs present in only
// one report are reported but never fail the gate, so adding an
// experiment or a row does not require regenerating the baseline —
// only a *shape change* to an existing table does (see
// scripts/bench-update.sh).
//
// Baselines and comparison runs must come from the same machine class
// (same GOMAXPROCS at minimum — the tool warns on a mismatch) or the
// comparison is meaningless.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// report mirrors sagivbench's -json document.
type report struct {
	Go          string  `json:"go"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Scale       float64 `json:"scale"`
	Experiments []struct {
		ID     string `json:"id"`
		Tables []struct {
			Title   string     `json:"title"`
			Headers []string   `json:"headers"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	} `json:"experiments"`
}

// cellKey identifies one throughput measurement across runs.
type cellKey struct {
	exp, table, config, column string
}

// load reads and decodes one report.
func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// throughputCells extracts every throughput cell of a report.
func throughputCells(r *report) map[cellKey]float64 {
	out := make(map[cellKey]float64)
	for _, exp := range r.Experiments {
		for _, tbl := range exp.Tables {
			titleTput := strings.Contains(tbl.Title, "ops/s")
			for _, row := range tbl.Rows {
				if len(row) == 0 {
					continue
				}
				for i, cell := range row {
					if i == 0 || i >= len(tbl.Headers) {
						continue
					}
					if !strings.Contains(tbl.Headers[i], "ops/s") && !titleTput {
						continue
					}
					v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
					if err != nil || v <= 0 {
						continue
					}
					out[cellKey{exp.ID, tbl.Title, row[0], tbl.Headers[i]}] = v
				}
			}
		}
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	latestPath := flag.String("latest", "", "report to gate (required)")
	maxPct := flag.Float64("max-regression-pct", 15, "fail when a throughput cell drops more than this percent below baseline (env BENCH_MAX_REGRESSION_PCT overrides)")
	flag.Parse()
	if env := os.Getenv("BENCH_MAX_REGRESSION_PCT"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: bad BENCH_MAX_REGRESSION_PCT %q: %v\n", env, err)
			os.Exit(2)
		}
		*maxPct = v
	}
	if *latestPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -latest required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	latest, err := load(*latestPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	if base.GOMAXPROCS != latest.GOMAXPROCS {
		fmt.Printf("warning: GOMAXPROCS differs (baseline %d, latest %d) — comparison is cross-machine\n",
			base.GOMAXPROCS, latest.GOMAXPROCS)
	}
	if base.Scale != latest.Scale {
		fmt.Printf("warning: scale differs (baseline %g, latest %g)\n", base.Scale, latest.Scale)
	}

	baseCells := throughputCells(base)
	latestCells := throughputCells(latest)
	compared, onlyBase, onlyLatest, failures := 0, 0, 0, 0
	for key, b := range baseCells {
		l, ok := latestCells[key]
		if !ok {
			onlyBase++
			continue
		}
		compared++
		delta := (l - b) / b * 100
		if -delta > *maxPct {
			failures++
			fmt.Printf("REGRESSION %s / %q / %s / %s: %.0f -> %.0f ops/s (%.1f%%, limit -%.0f%%)\n",
				key.exp, key.table, key.config, key.column, b, l, delta, *maxPct)
		}
	}
	for key := range latestCells {
		if _, ok := baseCells[key]; !ok {
			onlyLatest++
		}
	}
	fmt.Printf("benchcompare: %d throughput cells compared, %d regressions beyond %.0f%% (%d baseline-only, %d new)\n",
		compared, failures, *maxPct, onlyBase, onlyLatest)
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no comparable throughput cells — wrong files?")
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}
