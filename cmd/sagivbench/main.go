// Command sagivbench regenerates the evaluation tables E1–E8 (plus
// the E12 durability, E13 network-pipelining, E14 replication, E15
// disk-native, E16 live-migration and E17 verified-serving tables) described in DESIGN.md and recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	sagivbench [-experiment all|E1|E2|...|E8|E12|E13|E14|E15|E16|E17] [-scale 1.0]
//	           [-json results.json]
//
// -scale shrinks run sizes proportionally (e.g. 0.05 for a quick look).
// -json additionally writes every table as machine-readable JSON — the
// format CI uploads as a workflow artifact so performance can be
// compared PR over PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"blinktree/internal/harness"
)

// jsonTable is one rendered table in the -json output.
type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// jsonExperiment is one experiment's results in the -json output.
type jsonExperiment struct {
	ID        string      `json:"id"`
	ElapsedMS float64     `json:"elapsed_ms"`
	Tables    []jsonTable `json:"tables"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Go          string           `json:"go"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Scale       float64          `json:"scale"`
	Experiments []jsonExperiment `json:"experiments"`
}

func main() {
	exp := flag.String("experiment", "all", "experiment id (E1..E8, E12, E13, E14, E15, E16, E17) or 'all'")
	scale := flag.Float64("scale", 1.0, "size multiplier for run lengths")
	jsonPath := flag.String("json", "", "also write results as JSON to this path")
	flag.Parse()

	s := harness.Scale(*scale)
	experiments := []struct {
		id string
		fn func(io.Writer, harness.Scale) error
	}{
		{"E1", harness.E1Throughput},
		{"E1B", harness.E1DiskThroughput},
		{"E2", harness.E2LockFootprint},
		{"E3", harness.E3Compression},
		{"E4", harness.E4RestartRate},
		{"E5", harness.E5Compressors},
		{"E6", harness.E6Deadlock},
		{"E7", harness.E7LinkChase},
		{"E8", harness.E8Reclamation},
		{"E12", harness.E12Durability},
		{"E13", harness.E13NetPipeline},
		{"E14", harness.E14Replication},
		{"E15", harness.E15DiskNative},
		{"E16", harness.E16Migration},
		{"E17", harness.E17Verify},
	}

	report := jsonReport{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
	}
	var current *jsonExperiment
	if *jsonPath != "" {
		harness.SetCapture(func(t *harness.Table) {
			if current == nil {
				return
			}
			current.Tables = append(current.Tables, jsonTable{
				Title:   t.Title,
				Headers: t.Headers,
				Rows:    t.Rows,
				Notes:   t.Notes,
			})
		})
	}

	fmt.Printf("sagivbench: Sagiv B*-tree with overtaking — evaluation harness\n")
	fmt.Printf("host: GOMAXPROCS=%d, scale=%.3f\n\n", runtime.GOMAXPROCS(0), *scale)

	want := strings.ToUpper(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "ALL" && want != e.id {
			continue
		}
		report.Experiments = append(report.Experiments, jsonExperiment{ID: e.id})
		current = &report.Experiments[len(report.Experiments)-1]
		start := time.Now()
		if err := e.fn(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		current.ElapsedMS = float64(elapsed.Microseconds()) / 1000
		fmt.Printf("  (%s completed in %v)\n\n", e.id, elapsed.Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E8, E12, E13, E14, E15, E16, E17 or all)\n", *exp)
		os.Exit(2)
	}
	if *jsonPath != "" {
		current = nil
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote JSON results to %s\n", *jsonPath)
	}
}
