// Command sagivbench regenerates the evaluation tables E1–E8 (plus
// the E12 durability and E13 network-pipelining tables) described
// in DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	sagivbench [-experiment all|E1|E2|...|E8|E12|E13] [-scale 1.0]
//
// -scale shrinks run sizes proportionally (e.g. 0.05 for a quick look).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"blinktree/internal/harness"
)

func main() {
	exp := flag.String("experiment", "all", "experiment id (E1..E8, E12, E13) or 'all'")
	scale := flag.Float64("scale", 1.0, "size multiplier for run lengths")
	flag.Parse()

	s := harness.Scale(*scale)
	experiments := []struct {
		id string
		fn func(io.Writer, harness.Scale) error
	}{
		{"E1", harness.E1Throughput},
		{"E1B", harness.E1DiskThroughput},
		{"E2", harness.E2LockFootprint},
		{"E3", harness.E3Compression},
		{"E4", harness.E4RestartRate},
		{"E5", harness.E5Compressors},
		{"E6", harness.E6Deadlock},
		{"E7", harness.E7LinkChase},
		{"E8", harness.E8Reclamation},
		{"E12", harness.E12Durability},
		{"E13", harness.E13NetPipeline},
	}

	fmt.Printf("sagivbench: Sagiv B*-tree with overtaking — evaluation harness\n")
	fmt.Printf("host: GOMAXPROCS=%d, scale=%.3f\n\n", runtime.GOMAXPROCS(0), *scale)

	want := strings.ToUpper(*exp)
	ran := 0
	for _, e := range experiments {
		if want != "ALL" && want != e.id {
			continue
		}
		start := time.Now()
		if err := e.fn(os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("  (%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E8, E12, E13 or all)\n", *exp)
		os.Exit(2)
	}
}
