// Command blinkserver serves a blinktree index — single tree or
// sharded fleet, volatile or WAL-backed — over the wire protocol of
// docs/protocol.md, with an HTTP /healthz + /metrics sidecar.
//
// Usage:
//
//	blinkserver [-addr 127.0.0.1:4640] [-http 127.0.0.1:4641]
//	            [-shards 8] [-k 16] [-compressors 1]
//	            [-durable] [-dir /data/idx]
//	            [-disk-native] [-cache-bytes 67108864]
//	            [-coalesce 200us] [-max-batch 1024] [-max-inflight 1048576]
//	            [-follow primary:4640]
//	            [-verified] [-verify-buckets 4096] [-root-every 1s]
//
// With -durable, every acknowledged mutation is on disk (group-commit
// WAL under -dir, one segment set per shard) before its response is
// sent, and restarting the server on the same -dir recovers
// "checkpoint + log suffix". Clients can force a checkpoint over the
// wire (client.Checkpoint); a periodic checkpoint loop is enabled with
// -checkpoint-every.
//
// With -disk-native, every shard serves its tree through a bounded
// buffer pool (at most -cache-bytes resident per shard) over a page
// file, so the index can be much larger than RAM. Composes with
// -durable: the page file lives beside the WAL but stays scratch —
// recovery is still "checkpoint + log suffix". Pool behaviour
// (hits, misses, evictions, read-ahead, pinned high-water) is exposed
// per shard on /metrics as blinkpool_*.
//
// With -follow, the server runs as an asynchronous read replica of the
// named primary: it streams the primary's WAL, applies it locally
// (into its own WAL when also -durable, which is what makes it
// promotable), serves reads, and refuses writes with the read-only
// status until a client sends Promote. The shard counts of primary and
// follower must match, and the primary must be durable.
//
// With -verified, the server maintains an incremental Merkle state
// root over its contents (docs/protocol.md §integrity): OpRoot
// and OpProve are served, checkpoints carry a state root that recovery
// recomputes and compares, and — when both sides of a -follow pair run
// verified — the follower independently recomputes every root the
// primary publishes (-root-every, default 1s per shard) and refuses to
// continue on divergence.
//
// Shutdown is graceful: SIGINT/SIGTERM stop accepting, let in-flight
// polls finish, then close the index (flushing the WAL).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"blinktree/client"
	"blinktree/internal/cluster"
	"blinktree/internal/repl"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// runMigrate is the -migrate admin mode: "RANGE=TARGET" asks the
// cluster member at addr (or whichever member currently owns the
// range) to hand it to TARGET, waits for the handoff to commit, and
// prints the resulting map.
func runMigrate(addr, spec string) error {
	rangeStr, target, ok := strings.Cut(spec, "=")
	if !ok || target == "" {
		return fmt.Errorf("want RANGE=TARGET, got %q", spec)
	}
	sh, err := strconv.Atoi(strings.TrimSpace(rangeStr))
	if err != nil {
		return fmt.Errorf("bad range %q: %v", rangeStr, err)
	}
	cl, err := client.DialCluster(addr, client.Options{})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if err := cl.Migrate(ctx, sh, strings.TrimSpace(target)); err != nil {
		return err
	}
	m := cl.Map()
	fmt.Printf("migrated range %d to %s; map v%d:\n", sh, target, m.Version)
	for i, o := range m.Owners {
		fmt.Printf("  range %d: %s\n", i, o)
	}
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:4640", "TCP listen address for the wire protocol")
	httpAddr := flag.String("http", "", "HTTP listen address for /healthz and /metrics (empty = off)")
	shards := flag.Int("shards", 8, "range partitions (1 = single tree)")
	k := flag.Int("k", 16, "minimum pairs per node")
	compressors := flag.Int("compressors", 1, "background compression workers per shard")
	durable := flag.Bool("durable", false, "group-commit WAL + crash recovery under -dir")
	dir := flag.String("dir", "", "durability directory (required with -durable)")
	diskNative := flag.Bool("disk-native", false, "serve through a bounded buffer pool over per-shard page files (larger-than-RAM mode)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "with -disk-native: buffer pool budget per shard")
	coalesce := flag.Duration("coalesce", 200*time.Microsecond, "pipelining coalesce window per poll")
	maxBatch := flag.Int("max-batch", 1024, "max requests gathered per poll")
	maxInflight := flag.Int("max-inflight", 1<<20, "per-connection in-flight request bytes (backpressure)")
	ckptEvery := flag.Duration("checkpoint-every", 0, "periodic checkpoint interval (0 = only on demand)")
	follow := flag.String("follow", "", "run as a read-only replica of this primary address (promote over the wire)")
	verified := flag.Bool("verified", false, "maintain a Merkle state root: OpRoot/OpProve, checkpoint root verification, verified replication")
	verifyBuckets := flag.Int("verify-buckets", 0, "with -verified: leaf buckets per shard in the hash tree (power of two, default 4096)")
	rootEvery := flag.Duration("root-every", 0, "with -verified: how often each follower feed publishes a sealed state root (default 1s)")
	clusterAdvertise := flag.String("cluster-advertise", "", "serve as a cluster member advertising this address to peers and clients (requires -durable)")
	clusterInitial := flag.String("cluster-initial", "", "with -cluster-advertise: address owning every range on a fresh -dir (default: this node)")
	migrate := flag.String("migrate", "", "admin mode RANGE=TARGET: ask the cluster at -addr to migrate the range, print the new map, exit")
	flag.Parse()

	if *migrate != "" {
		if err := runMigrate(*addr, *migrate); err != nil {
			log.Fatalf("blinkserver: migrate: %v", err)
		}
		return
	}
	if *durable && *dir == "" {
		log.Fatal("blinkserver: -durable requires -dir")
	}
	if *verifyBuckets != 0 && !*verified {
		log.Fatal("blinkserver: -verify-buckets requires -verified")
	}
	if *rootEvery != 0 && !*verified {
		log.Fatal("blinkserver: -root-every requires -verified")
	}
	opts := shard.Options{
		MinPairs:          *k,
		CompressorWorkers: *compressors,
		Durable:           *durable,
		Dir:               *dir,
		DiskNative:        *diskNative,
		CacheBytes:        *cacheBytes,
		Verified:          *verified,
		VerifyBuckets:     *verifyBuckets,
	}
	r, err := shard.NewRouter(*shards, opts)
	if err != nil {
		log.Fatalf("blinkserver: open index: %v", err)
	}
	cfg := server.Config{
		Addr:        *addr,
		HTTPAddr:    *httpAddr,
		Coalesce:    *coalesce,
		MaxBatch:    *maxBatch,
		MaxInflight: *maxInflight,
		RootEvery:   *rootEvery,
	}
	var node *cluster.Node
	if *clusterAdvertise != "" {
		if !*durable {
			log.Fatal("blinkserver: -cluster-advertise requires -durable (crash-safe handoff needs a WAL)")
		}
		if *follow != "" {
			log.Fatal("blinkserver: -cluster-advertise is incompatible with -follow")
		}
		if *verified {
			// A cluster member's shards migrate between nodes, so no
			// single node can bind one root to the whole keyspace.
			log.Fatal("blinkserver: -cluster-advertise is incompatible with -verified")
		}
		node, err = cluster.NewNode(cluster.NodeConfig{
			Self:         *clusterAdvertise,
			Shards:       *shards,
			InitialOwner: *clusterInitial,
			Dir:          *dir,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("blinkserver: cluster: %v", err)
		}
		if err := node.ReclaimRemote(r); err != nil {
			log.Fatalf("blinkserver: cluster: %v", err)
		}
		node.ResolveFences(r)
		cfg.Cluster = node
	}
	var follower *repl.Follower
	if *follow != "" {
		fdir := ""
		if *durable {
			fdir = *dir
		}
		follower, err = repl.NewFollower(r, repl.FollowerConfig{
			Primary: *follow,
			Dir:     fdir,
			Logf:    log.Printf,
		})
		if err != nil {
			log.Fatalf("blinkserver: follower: %v", err)
		}
		cfg.ReadOnly = true
		cfg.OnPromote = follower.Stop
	}
	s := server.New(r, cfg)
	if err := s.Start(); err != nil {
		log.Fatalf("blinkserver: listen: %v", err)
	}
	if follower != nil {
		follower.Start()
	}
	fmt.Printf("blinkserver: serving %d shard(s) on %s", *shards, s.Addr())
	if *httpAddr != "" {
		fmt.Printf(", http on %s", s.HTTPAddr())
	}
	if *durable {
		fmt.Printf(", durable in %s (%d pairs recovered)", *dir, r.Len())
	}
	if *diskNative {
		fmt.Printf(", disk-native (%d KiB cache per shard)", *cacheBytes>>10)
	}
	if *follow != "" {
		fmt.Printf(", following %s (read-only until promoted)", *follow)
	}
	if *verified {
		root, err := r.Root()
		if err != nil {
			log.Fatalf("blinkserver: state root: %v", err)
		}
		fmt.Printf(", verified (root %x)", root[:8])
	}
	if node != nil {
		cs := node.ClusterStats()
		fmt.Printf(", cluster member %s (map v%d, owns %d/%d ranges)",
			*clusterAdvertise, cs.Version, cs.Owned, *shards)
	}
	fmt.Println()

	stopCkpt := make(chan struct{})
	if *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopCkpt:
					return
				case <-tick.C:
					if err := r.Checkpoint(); err != nil {
						log.Printf("blinkserver: checkpoint: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("blinkserver: draining...")
	close(stopCkpt)
	if follower != nil {
		if err := follower.Stop(); err != nil {
			log.Printf("blinkserver: stop follower: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		log.Printf("blinkserver: close listener: %v", err)
	}
	if err := r.Close(); err != nil {
		log.Printf("blinkserver: close index: %v", err)
	}
	m := &s.Metrics
	fmt.Printf("blinkserver: served %d requests over %d polls (%.1f req/poll), %d connections\n",
		m.Requests.Load(), m.Polls.Load(),
		float64(m.Requests.Load())/float64(max(m.Polls.Load(), 1)),
		m.Accepted.Load())
}
