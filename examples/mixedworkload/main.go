// Mixed workload: many goroutines search, insert and delete
// concurrently while compression runs in the background — the paper's
// headline scenario (any number of each process type at once), with
// the lock-footprint counters printed at the end as evidence.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"blinktree"
)

const (
	workers  = 8
	keySpace = 1 << 16
	duration = 2 * time.Second
)

func main() {
	tr, err := blinktree.Open(blinktree.Options{
		MinPairs:          8,
		CompressorWorkers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Preload half the key space.
	for i := 0; i < keySpace; i += 2 {
		if err := tr.Insert(blinktree.Key(i), blinktree.Value(i)); err != nil {
			log.Fatal(err)
		}
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := blinktree.Key(rng.Intn(keySpace))
				var err error
				switch rng.Intn(10) {
				case 0, 1, 2: // 30% inserts
					err = tr.Insert(k, blinktree.Value(k))
					if errors.Is(err, blinktree.ErrDuplicate) {
						err = nil
					}
				case 3, 4: // 20% deletes
					err = tr.Delete(k)
					if errors.Is(err, blinktree.ErrNotFound) {
						err = nil
					}
				default: // 50% searches
					_, err = tr.Search(k)
					if errors.Is(err, blinktree.ErrNotFound) {
						err = nil
					}
				}
				if err != nil {
					log.Fatalf("worker %d: %v", w, err)
				}
				ops.Add(1)
			}
		}(w)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	st, err := tr.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d operations in %v (%.0f ops/s) across %d goroutines\n",
		ops.Load(), duration, float64(ops.Load())/duration.Seconds(), workers)
	fmt.Printf("splits: %d, link hops: %d, wrong-node restarts: %d\n",
		st.Tree.Splits, st.Tree.LinkHops, st.Tree.Restarts)
	fmt.Printf("compression while running: %d merges, %d redistributions (queue now %d)\n",
		st.Merges, st.Redist, st.QueueDepth)
	fmt.Printf("lock footprint — inserts: max %d held (paper: exactly 1); compressors: max %d (paper: ≤ 3)\n",
		st.Tree.InsertLocks.MaxHeld, st.CompressorMaxLocks)

	if err := tr.Compact(); err != nil {
		log.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-run invariant check: OK")
}
