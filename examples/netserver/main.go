// Example netserver walks the network front-end end to end: start a
// durable sharded server in-process, drive it with the client package
// — point ops, conditional writes, pipelined concurrent traffic, a
// shard-parallel batch, paged scans, a checkpoint over the wire —
// then crash-recover by reopening the same directory.
//
// The same server is available as a standalone binary:
//
//	go run ./cmd/blinkserver -addr 127.0.0.1:4640 -http 127.0.0.1:4641 \
//	    -shards 8 -durable -dir /tmp/blink
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"sync"

	"blinktree"
	"blinktree/client"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

func main() {
	dir, err := os.MkdirTemp("", "netserver-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// --- Serve: 4 durable shards on an ephemeral port, with the
	// health/metrics sidecar.
	open := func() (*shard.Router, *server.Server) {
		r, err := shard.NewRouter(4, shard.Options{Durable: true, Dir: dir})
		if err != nil {
			log.Fatal(err)
		}
		s := server.New(r, server.Config{Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
		if err := s.Start(); err != nil {
			log.Fatal(err)
		}
		return r, s
	}
	r, s := open()
	fmt.Printf("serving 4 durable shards on %s (http %s)\n", s.Addr(), s.HTTPAddr())

	// --- Connect. The pool pipelines concurrent calls automatically.
	c, err := client.Dial(s.Addr().String(), client.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Point ops and conditional writes behave exactly like the local
	// API — sentinel errors included.
	if err := c.Insert(ctx, 42, 420); err != nil {
		log.Fatal(err)
	}
	old, existed, _ := c.Upsert(ctx, 42, 421)
	fmt.Printf("upsert 42: old=%d existed=%v\n", old, existed)
	if _, err := c.Search(ctx, 7); errors.Is(err, blinktree.ErrNotFound) {
		fmt.Println("search 7: ErrNotFound survives the wire")
	}

	// 32 goroutines over one pool: the client multiplexes them onto
	// pipelined bursts, the server coalesces each burst into one
	// shard-parallel ApplyBatch (and one WAL group commit per shard).
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := client.Key(uint64(w*100+i) * 0x9E3779B97F4A7C15)
				if _, _, err := c.Upsert(ctx, k, client.Value(i)); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	n, _ := c.Len(ctx)
	fmt.Printf("after pipelined load: %d pairs\n", n)
	fmt.Printf("server coalescing: %d requests in %d polls\n",
		s.Metrics.Requests.Load(), s.Metrics.Polls.Load())

	// An explicit batch: one request frame, executed shard-parallel.
	results, err := c.Batch(ctx, []client.Op{
		{Kind: client.OpSearch, Key: 42},
		{Kind: client.OpCompareAndSwap, Key: 42, Old: 421, Value: 1000},
		{Kind: client.OpDelete, Key: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: search=%d cas=%v delete-err=%v\n",
		results[0].Value, results[1].OK, results[2].Err)

	// Paged scans stitch all shards in key order.
	count := 0
	_ = c.Range(ctx, 0, client.Key(^uint64(0)), 500, func(client.Key, client.Value) bool {
		count++
		return true
	})
	fmt.Printf("scanned %d pairs in pages of 500\n", count)

	// Checkpoint over the wire: durable snapshot + WAL truncation.
	if err := c.Checkpoint(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpointed over the wire")

	// --- Recover: shut everything down, reopen the same directory.
	c.Close()
	s.Close()
	r.Close()
	r2, s2 := open()
	defer func() { s2.Close(); r2.Close() }()
	c2, err := client.Dial(s2.Addr().String(), client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer c2.Close()
	n2, _ := c2.Len(ctx)
	fmt.Printf("recovered: %d pairs back after restart\n", n2)
}
