// Persistence: run the tree on a file-backed page store through the
// LRU buffer pool (the disk-resident regime the paper was written
// for), and move logical data between trees with Snapshot/Restore.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
)

import "blinktree"

func main() {
	dir, err := os.MkdirTemp("", "blinktree-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A tree whose nodes live as 4 KiB pages in a file, cached by a
	// 256-page buffer pool.
	dbPath := filepath.Join(dir, "index.db")
	tr, err := blinktree.Open(blinktree.Options{
		Path:       dbPath,
		MinPairs:   32,
		CachePages: 256,
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = 50000
	for i := 0; i < n; i++ {
		if err := tr.Insert(blinktree.Key(i*3), blinktree.Value(i)); err != nil {
			log.Fatal(err)
		}
	}
	fi, _ := os.Stat(dbPath)
	fmt.Printf("paged tree: %d keys, height %d, db file %d KiB\n", tr.Len(), tr.Height(), fi.Size()/1024)

	v, err := tr.Search(blinktree.Key(3 * 12345))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup through buffer pool: key %d -> %d\n", 3*12345, v)

	// Snapshot the logical data to a stream...
	snapPath := filepath.Join(dir, "snapshot.blts")
	f, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Snapshot(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	sfi, _ := os.Stat(snapPath)
	fmt.Printf("snapshot written: %d KiB\n", sfi.Size()/1024)
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}

	// ...and restore it into a fresh in-memory tree.
	mem, err := blinktree.Open(blinktree.Options{MinPairs: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()
	rf, err := os.Open(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	if err := mem.Restore(rf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored into memory: %d keys, height %d\n", mem.Len(), mem.Height())
	if got, err := mem.Search(blinktree.Key(3 * 12345)); err != nil || got != v {
		log.Fatalf("restored value mismatch: (%d, %v)", got, err)
	}
	if err := mem.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored tree verified: OK")
}
