// Compression: the paper's motivating scenario for §5. Build a large
// index, delete most of it (a log-retention purge), and watch the tree
// stay bloated under the Lehman–Yao regime versus shrink under Sagiv
// compression.
package main

import (
	"fmt"
	"log"

	"blinktree"
)

const n = 200000

func main() {
	fmt.Println("scenario: retention purge deletes 95% of an index's keys")
	fmt.Println()

	// Regime 1: no compression (Lehman–Yao deletions, [8]).
	plain, err := blinktree.Open(blinktree.Options{
		MinPairs:    8,
		Compression: blinktree.CompressionOff,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer plain.Close()
	run(plain, "no compression (Lehman-Yao regime)")

	// Regime 2: background compression + final compaction (Sagiv §5).
	comp, err := blinktree.Open(blinktree.Options{
		MinPairs:          8,
		CompressorWorkers: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer comp.Close()
	run(comp, "background compression (Sagiv)")
	if err := comp.Compact(); err != nil {
		log.Fatal(err)
	}
	report(comp, "after full compaction (Compact)")
}

func run(tr *blinktree.Tree, label string) {
	for i := 0; i < n; i++ {
		if err := tr.Insert(blinktree.Key(i), blinktree.Value(i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%20 != 0 { // keep every 20th key
			if err := tr.Delete(blinktree.Key(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	report(tr, label)
}

func report(tr *blinktree.Tree, label string) {
	st, err := tr.Stats()
	if err != nil {
		log.Fatal(err)
	}
	occ := st.Occupancy
	fmt.Printf("%-40s pairs=%-6d nodes=%-5d height=%d underfull=%-5d meanFill=%.2f freed=%d\n",
		label+":", occ.Pairs, occ.Nodes, occ.Height, occ.Underfull, occ.MeanFill, st.Reclaim.Freed)
	if err := tr.Check(); err != nil {
		log.Fatalf("invariants: %v", err)
	}
}
