// Sharded: scale the Sagiv tree past one lock table by
// range-partitioning the keyspace across independent trees. Point
// operations route to one shard, ordered scans stitch shards in key
// order, and batches run shard-parallel — all behind the same Index
// interface as the single tree.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"blinktree"
)

func main() {
	// Four independent trees, each with its own lock table, compression
	// queue and reclamation epoch. blinktree.NewTree() would serve the
	// same calls from one tree.
	var idx blinktree.Index = blinktree.NewSharded(4)
	defer idx.Close()

	// Spread keys over the full uint64 range so every shard gets some.
	// (Range partitioning is static: shard i owns [i·2^64/4, (i+1)·2^64/4).)
	rng := rand.New(rand.NewSource(42))
	const n = 10000
	keys := make([]blinktree.Key, 0, n)
	for i := 0; i < n; i++ {
		k := blinktree.Key(rng.Uint64())
		if err := idx.Insert(k, blinktree.Value(i)); err != nil {
			log.Fatal(err)
		}
		keys = append(keys, k)
	}
	fmt.Printf("inserted %d pairs, height %d\n", idx.Len(), idx.Height())

	// Ordered iteration crosses shard boundaries transparently.
	it := idx.NewIterator(0)
	count := 0
	var prev blinktree.Key
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		if count > 0 && k <= prev {
			log.Fatalf("order violated: %d after %d", k, prev)
		}
		prev = k
		count++
	}
	if err := it.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iterator visited %d pairs in global key order\n", count)

	// Batched dispatch: operations are grouped by destination shard and
	// each group runs on its own goroutine.
	s := idx.(*blinktree.Sharded)
	batch := make([]blinktree.BatchOp, 0, 1000)
	for i := 0; i < 1000; i++ {
		k := keys[rng.Intn(len(keys))] // stored key: a hit
		if i%4 == 0 {
			k = blinktree.Key(rng.Uint64()) // random key: almost surely a miss
		}
		batch = append(batch, blinktree.BatchOp{Kind: blinktree.BatchSearch, Key: k})
	}
	hits := 0
	for _, res := range s.ApplyBatch(batch) {
		if res.Err == nil {
			hits++
		}
	}
	fmt.Printf("batch of %d searches: %d hits\n", len(batch), hits)

	// Per-shard balance: random uint64 keys should split ~evenly.
	fmt.Println("shard balance:")
	for _, st := range s.ShardStats() {
		fmt.Printf("  shard %d: %5d pairs, %5d ops routed\n",
			st.Shard, st.Len, st.Searches+st.Inserts+st.Deletes+st.BatchOps)
	}

	if err := idx.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants OK in every shard")
}
