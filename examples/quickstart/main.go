// Quickstart: open a tree, insert, search, scan, delete — the 60-second
// tour of the public API.
package main

import (
	"errors"
	"fmt"
	"log"

	"blinktree"
)

func main() {
	// An in-memory tree with background compression (the default).
	tr, err := blinktree.Open(blinktree.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tr.Close()

	// Store some pairs. Values are opaque 64-bit payloads — in the
	// paper's terms, pointers to records.
	for _, user := range []struct {
		id     blinktree.Key
		record blinktree.Value
	}{
		{1001, 0xA1}, {1002, 0xB2}, {1003, 0xC3}, {1004, 0xD4},
	} {
		if err := tr.Insert(user.id, user.record); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup.
	v, err := tr.Search(1002)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1002 -> record %#x\n", v)

	// A lookup that misses.
	if _, err := tr.Search(9999); errors.Is(err, blinktree.ErrNotFound) {
		fmt.Println("user 9999 not found (as expected)")
	}

	// Ordered scan over a key range via the leaf links.
	fmt.Println("users 1001..1003:")
	err = tr.Range(1001, 1003, func(k blinktree.Key, v blinktree.Value) bool {
		fmt.Printf("  %d -> %#x\n", k, v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	// Delete and verify.
	if err := tr.Delete(1001); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after delete: %d users, height %d\n", tr.Len(), tr.Height())

	// The tree can always self-verify.
	if err := tr.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants OK")
}
