// Durability: run an index on a group-commit write-ahead log, crash
// nothing but still close and reopen it, checkpoint to truncate the
// log, and watch the WAL counters — every acknowledged write survives
// a restart (and a crash: see cmd/blinkstress -durable for the
// kill-and-recover harness).
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
)

import "blinktree"

func main() {
	dir, err := os.MkdirTemp("", "blinktree-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := blinktree.Options{Durable: true, Dir: dir}
	tr, err := blinktree.Open(opts)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent writers: group commit batches their fsyncs. Each
	// Upsert returns only once its log record is on stable storage.
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := blinktree.Key(w*perWorker + i)
				if _, _, err := tr.Upsert(k, blinktree.Value(k)*2); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	st, _ := tr.Stats()
	fmt.Printf("wrote %d pairs durably: %d records in %d fsyncs (mean group %.1f)\n",
		tr.Len(), st.WAL.Records, st.WAL.Syncs, st.WAL.MeanGroup())

	// Checkpoint: snapshot the state, truncate the log. Recovery after
	// this replays only the records since.
	if err := tr.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if err := tr.Delete(7); err != nil {
		log.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen the same directory: checkpoint + log suffix come back.
	re, err := blinktree.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	rst, _ := re.Stats()
	fmt.Printf("recovered %d pairs (replayed %d post-checkpoint records)\n",
		re.Len(), rst.WAL.Replayed)
	if _, err := re.Search(7); err == nil {
		log.Fatal("deleted key survived recovery")
	}
	v, err := re.Search(4000 - 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spot check: key %d -> %d\n", 4000-1, v)
	if err := re.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered index verified: OK")

	// The same works sharded: each shard logs and checkpoints
	// independently under dir/shard<i>.
	sdir, err := os.MkdirTemp("", "blinktree-durable-sharded")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(sdir)
	sh, err := blinktree.OpenSharded(4, blinktree.Options{Durable: true, Dir: sdir})
	if err != nil {
		log.Fatal(err)
	}
	stride := ^uint64(0)/1000 + 1
	for i := uint64(0); i < 1000; i++ {
		if err := sh.Insert(blinktree.Key(i*stride), blinktree.Value(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := sh.Close(); err != nil {
		log.Fatal(err)
	}
	sh2, err := blinktree.OpenSharded(4, blinktree.Options{Durable: true, Dir: sdir})
	if err != nil {
		log.Fatal(err)
	}
	defer sh2.Close()
	fmt.Printf("sharded recovery: %d pairs across %d shards\n", sh2.Len(), sh2.Shards())
}
