package blinktree

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	tr, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	if v, err := tr.Search(1); err != nil || v != 10 {
		t.Fatalf("Search = (%d,%v)", v, err)
	}
	if _, err := tr.Search(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	if err := tr.Insert(1, 11); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup = %v", err)
	}
	if err := tr.Delete(1); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestBackgroundCompressionEndToEnd(t *testing.T) {
	tr, err := Open(Options{MinPairs: 3, CompressorWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(Key(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if i%10 != 0 {
			if err := tr.Delete(Key(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Occupancy.Underfull != 0 {
		t.Fatalf("underfull after Compact: %+v", st.Occupancy)
	}
	if st.Merges == 0 {
		t.Fatal("no merges recorded")
	}
	if st.CompressorMaxLocks > 3 {
		t.Fatalf("compressor held %d locks", st.CompressorMaxLocks)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 {
		t.Fatalf("insert held %d locks", st.Tree.InsertLocks.MaxHeld)
	}
	for i := 0; i < n; i += 10 {
		if v, err := tr.Search(Key(i)); err != nil || v != Value(i) {
			t.Fatalf("survivor %d: (%d,%v)", i, v, err)
		}
	}
}

func TestCompressionModes(t *testing.T) {
	for _, mode := range []CompressionMode{CompressionOff, CompressionManual, CompressionBackground} {
		tr, err := Open(Options{MinPairs: 2, Compression: mode})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			_ = tr.Insert(Key(i), Value(i))
		}
		for i := 0; i < 500; i += 2 {
			_ = tr.Delete(Key(i))
		}
		if mode == CompressionManual {
			if err := tr.DrainCompression(); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPagedTreeOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	tr, err := Open(Options{Path: path, MinPairs: 4, PageSize: 512, CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(Key(i*7), Value(i)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if v, err := tr.Search(Key(i * 7)); err != nil || v != Value(i) {
			t.Fatalf("Search = (%d,%v)", v, err)
		}
	}
	// Page capacity guard.
	if _, err := Open(Options{Path: filepath.Join(t.TempDir(), "x.db"), MinPairs: 64, PageSize: 256}); err == nil {
		t.Fatal("oversized MinPairs accepted for tiny page")
	}
}

func TestSnapshotRestore(t *testing.T) {
	tr, err := Open(Options{MinPairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rng := rand.New(rand.NewSource(3))
	model := map[Key]Value{}
	for i := 0; i < 1000; i++ {
		k := Key(rng.Intn(5000))
		if _, dup := model[k]; dup {
			continue
		}
		model[k] = Value(k) * 2
		if err := tr.Insert(k, Value(k)*2); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tr.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(Options{MinPairs: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if err := tr2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(model) {
		t.Fatalf("restored len %d != %d", tr2.Len(), len(model))
	}
	for k, v := range model {
		if got, err := tr2.Search(k); err != nil || got != v {
			t.Fatalf("restored key %d: (%d,%v)", k, got, err)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
	// Garbage rejected.
	if err := tr2.Restore(bytes.NewReader([]byte("nonsense!"))); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestMinMaxPublic(t *testing.T) {
	tr, _ := Open(Options{MinPairs: 2})
	defer tr.Close()
	if _, _, err := tr.Min(); !errors.Is(err, ErrNotFound) {
		t.Fatal("Min on empty")
	}
	for _, k := range []Key{9, 3, 7} {
		_ = tr.Insert(k, Value(k))
	}
	if k, _, _ := tr.Min(); k != 3 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 9 {
		t.Fatalf("Max = %d", k)
	}
}

func TestConcurrentPublicAPI(t *testing.T) {
	tr, err := Open(Options{MinPairs: 3, CompressorWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := Key(rng.Intn(2000))
				switch rng.Intn(3) {
				case 0:
					if err := tr.Insert(k, Value(k)); err != nil && !errors.Is(err, ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if err := tr.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				default:
					if v, err := tr.Search(k); err == nil && v != Value(k) {
						t.Errorf("foreign value %d under %d", v, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseStopsEverything(t *testing.T) {
	tr, err := Open(Options{MinPairs: 2, CompressorWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		_ = tr.Insert(Key(i), 0)
	}
	for i := 0; i < 300; i += 2 {
		_ = tr.Delete(Key(i))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1000, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close = %v", err)
	}
}
