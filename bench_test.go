// Benchmarks regenerating the evaluation experiments of DESIGN.md /
// EXPERIMENTS.md, one bench family per experiment. Run with
//
//	go test -bench=. -benchmem
//
// Absolute numbers are machine-dependent; the claims under test are
// the *relative* shapes (who wins, lock footprints, restart rarity).
package blinktree

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"blinktree/client"
	"blinktree/internal/base"
	"blinktree/internal/baseline/coarse"
	"blinktree/internal/baseline/lehmanyao"
	"blinktree/internal/baseline/lockcoupling"
	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/harness"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/repl"
	"blinktree/internal/server"
	"blinktree/internal/shard"
	"blinktree/internal/storage"
	"blinktree/internal/workload"
)

// buildTree constructs a preloaded tree of the given kind.
func buildTree(b *testing.B, kind harness.Kind, k, preload int, keySpace uint64) base.Tree {
	b.Helper()
	inst, err := harness.Build(kind, k, false)
	if err != nil {
		b.Fatal(err)
	}
	stride := keySpace / uint64(preload)
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < preload; i++ {
		key := base.Key(uint64(i) * stride)
		if err := inst.Tree.Insert(key, base.Value(key)); err != nil && !errors.Is(err, base.ErrDuplicate) {
			b.Fatal(err)
		}
	}
	return inst.Tree
}

// benchMix drives RunParallel with a deterministic per-goroutine
// workload generator drawing uniformly from [0, keySpace).
func benchMix(b *testing.B, tr base.Tree, keySpace uint64, mix workload.Mix) {
	benchMixDist(b, tr, workload.Uniform{N: keySpace}, mix)
}

// benchMixDist is benchMix with an arbitrary key distribution.
func benchMixDist(b *testing.B, tr base.Tree, dist workload.KeyDist, mix workload.Mix) {
	b.Helper()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen, err := workload.NewGenerator(seed.Add(1)*104729, dist, mix)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := workload.Apply(tr, gen.Next()); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE1Throughput: E1 — mixed-workload throughput for every
// implementation (the "higher degree of concurrency" claim, §1).
func BenchmarkE1Throughput(b *testing.B) {
	const keySpace = 1 << 18
	for _, kind := range harness.AllKinds {
		for _, mixCase := range []struct {
			name string
			mix  workload.Mix
		}{
			{"readmostly", workload.ReadMostly},
			{"balanced", workload.Balanced},
			{"writeonly", workload.WriteOnly},
		} {
			b.Run(fmt.Sprintf("%s/%s", kind, mixCase.name), func(b *testing.B) {
				tr := buildTree(b, kind, 16, 50000, keySpace)
				defer tr.Close()
				benchMix(b, tr, keySpace, mixCase.mix)
			})
		}
	}
}

// BenchmarkE2LockFootprint: E2 — insert cost under contention with
// footprint assertions (Sagiv exactly 1 lock; LY ≤ 3; coupling ≥ 2).
func BenchmarkE2LockFootprint(b *testing.B) {
	const keySpace = 1 << 20
	b.Run("sagiv", func(b *testing.B) {
		st := node.NewMemStore()
		tr, err := blink.New(blink.Config{Store: st, MinPairs: 4})
		if err != nil {
			b.Fatal(err)
		}
		benchMix(b, tr, keySpace, workload.InsertHeavy)
		b.StopTimer()
		fp := tr.Stats().InsertLocks
		if fp.Ops > 0 && fp.MaxHeld != 1 {
			b.Fatalf("sagiv insert MaxHeld = %d, want 1", fp.MaxHeld)
		}
		b.ReportMetric(float64(fp.MaxHeld), "max-locks")
	})
	b.Run("lehmanyao", func(b *testing.B) {
		tr, err := lehmanyao.New(lehmanyao.Config{MinPairs: 4})
		if err != nil {
			b.Fatal(err)
		}
		benchMix(b, tr, keySpace, workload.InsertHeavy)
		b.StopTimer()
		fp := tr.Stats().InsertLocks
		if fp.MaxHeld > 3 {
			b.Fatalf("lehman-yao insert MaxHeld = %d, want ≤ 3", fp.MaxHeld)
		}
		b.ReportMetric(float64(fp.MaxHeld), "max-locks")
	})
	b.Run("lockcoupling", func(b *testing.B) {
		tr, err := lockcoupling.New(4)
		if err != nil {
			b.Fatal(err)
		}
		benchMix(b, tr, keySpace, workload.InsertHeavy)
		b.StopTimer()
		fp := tr.Stats().InsertLocks
		b.ReportMetric(float64(fp.MaxHeld), "max-locks")
	})
}

// BenchmarkE3Compression: E3 — cost of compacting a 90%-deleted tree,
// with occupancy restoration asserted.
func BenchmarkE3Compression(b *testing.B) {
	for _, mode := range []string{"scanner", "queue"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := node.NewMemStore()
				lt := locks.NewTable()
				tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 8})
				if err != nil {
					b.Fatal(err)
				}
				var comp *compress.Compressor
				if mode == "queue" {
					comp = compress.NewCompressor(st, lt, 8, nil)
					comp.Attach(tr)
				}
				const n = 50000
				for j := 0; j < n; j++ {
					if err := tr.Insert(base.Key(j), 0); err != nil {
						b.Fatal(err)
					}
				}
				for j := 0; j < n; j++ {
					if j%10 != 0 {
						if err := tr.Delete(base.Key(j)); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.StartTimer()
				if mode == "queue" {
					if err := comp.DrainOnce(); err != nil {
						b.Fatal(err)
					}
				}
				sc := compress.NewScanner(st, lt, 8, nil)
				if err := sc.Compact(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				occ, err := tr.OccupancyStats()
				if err != nil {
					b.Fatal(err)
				}
				if occ.Underfull != 0 {
					b.Fatalf("%d underfull after compaction", occ.Underfull)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkE4RestartRate: E4 — search cost while compression churns,
// reporting restarts per million ops.
func BenchmarkE4RestartRate(b *testing.B) {
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 4, Reclaimer: rec, Restart: blink.RestartBacktrack})
	if err != nil {
		b.Fatal(err)
	}
	comp := compress.NewCompressor(st, lt, 4, rec)
	comp.Attach(tr)
	const n = 100000
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), base.Value(i)); err != nil {
			b.Fatal(err)
		}
	}
	comp.Start(2)
	defer comp.Stop()
	// Background churn keeps the compressor busy.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := base.Key(i % n)
			_ = tr.Delete(k)
			_ = tr.Insert(k, base.Value(k))
		}
	}()
	tr.ResetStats()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := base.Key((i * 2654435761) % n)
			if _, err := tr.Search(k); err != nil && !errors.Is(err, base.ErrNotFound) {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	stats := tr.Stats()
	if stats.Searches > 0 {
		b.ReportMetric(float64(stats.Restarts)/float64(stats.Searches)*1e6, "restarts/Mop")
	}
}

// BenchmarkE5Compressors: E5 — delete-heavy mutators against 0..8
// background compressor workers.
func BenchmarkE5Compressors(b *testing.B) {
	for _, nComp := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", nComp), func(b *testing.B) {
			st := node.NewMemStore()
			lt := locks.NewTable()
			tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 8})
			if err != nil {
				b.Fatal(err)
			}
			var comp *compress.Compressor
			if nComp > 0 {
				comp = compress.NewCompressor(st, lt, 8, nil)
				comp.Attach(tr)
				comp.Start(nComp)
				defer comp.Stop()
			}
			const keySpace = 1 << 17
			for i := 0; i < 50000; i++ {
				if err := tr.Insert(base.Key(i*2), 0); err != nil {
					b.Fatal(err)
				}
			}
			benchMix(b, tr, keySpace, workload.DeleteHeavy)
		})
	}
}

// BenchmarkE6DeadlockStress: E6 — the adversarial write-only mix with
// compressors; completing at all is the assertion (Theorem 2).
func BenchmarkE6DeadlockStress(b *testing.B) {
	st := node.NewMemStore()
	lt := locks.NewTable()
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 2})
	if err != nil {
		b.Fatal(err)
	}
	comp := compress.NewCompressor(st, lt, 2, nil)
	comp.Attach(tr)
	comp.Start(4)
	defer comp.Stop()
	benchMix(b, tr, 5000, workload.WriteOnly)
	b.StopTimer()
	stats := tr.Stats()
	if stats.InsertLocks.MaxHeld > 1 || stats.DeleteLocks.MaxHeld > 1 {
		b.Fatalf("update lock footprint exceeded 1: %+v", stats)
	}
	if fp := comp.Stats().Footprint.Snapshot(); fp.MaxHeld > 3 {
		b.Fatalf("compressor footprint %d > 3", fp.MaxHeld)
	}
}

// BenchmarkE7LinkChase: E7 — search speed vs insert pressure, with
// link hops per op reported.
func BenchmarkE7LinkChase(b *testing.B) {
	for _, mixCase := range []struct {
		name string
		mix  workload.Mix
	}{
		{"readonly", workload.ReadOnly},
		{"readmostly", workload.ReadMostly},
		{"insertheavy", workload.InsertHeavy},
	} {
		b.Run(mixCase.name, func(b *testing.B) {
			st := node.NewMemStore()
			tr, err := blink.New(blink.Config{Store: st, MinPairs: 4})
			if err != nil {
				b.Fatal(err)
			}
			const keySpace = 1 << 17
			for i := 0; i < 20000; i++ {
				key := base.Key(uint64(i) * (keySpace / 20000))
				if err := tr.Insert(key, 0); err != nil && !errors.Is(err, base.ErrDuplicate) {
					b.Fatal(err)
				}
			}
			tr.ResetStats()
			benchMix(b, tr, keySpace, mixCase.mix)
			b.StopTimer()
			stats := tr.Stats()
			total := stats.Searches + stats.Inserts + stats.Deletes
			if total > 0 {
				b.ReportMetric(float64(stats.LinkHops)/float64(total), "linkhops/op")
			}
		})
	}
}

// BenchmarkE8Reclamation: E8 — churn with periodic epoch collection,
// reporting pages freed per second.
func BenchmarkE8Reclamation(b *testing.B) {
	st := node.NewMemStore()
	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 4, Reclaimer: rec})
	if err != nil {
		b.Fatal(err)
	}
	comp := compress.NewCompressor(st, lt, 4, rec)
	comp.Attach(tr)
	comp.Start(2)
	defer comp.Stop()
	const n = 50000
	for i := 0; i < n; i++ {
		if err := tr.Insert(base.Key(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := base.Key(i % n)
		_ = tr.Delete(k)
		_ = tr.Insert(k, 0)
		if i%1024 == 0 {
			if _, err := rec.Collect(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if _, err := rec.Collect(); err != nil {
		b.Fatal(err)
	}
	rs := rec.Stats()
	b.ReportMetric(float64(rs.Freed), "pages-freed")
}

// BenchmarkAblationRestartPolicy compares the two §5.2 restart
// strategies under compression churn (DESIGN.md §6 ablation).
func BenchmarkAblationRestartPolicy(b *testing.B) {
	for _, pol := range []struct {
		name string
		p    blink.RestartPolicy
	}{{"backtrack", blink.RestartBacktrack}, {"fromroot", blink.RestartFromRoot}} {
		b.Run(pol.name, func(b *testing.B) {
			st := node.NewMemStore()
			lt := locks.NewTable()
			tr, err := blink.New(blink.Config{Store: st, Locks: lt, MinPairs: 4, Restart: pol.p})
			if err != nil {
				b.Fatal(err)
			}
			comp := compress.NewCompressor(st, lt, 4, nil)
			comp.Attach(tr)
			comp.Start(2)
			defer comp.Stop()
			const n = 50000
			for i := 0; i < n; i++ {
				if err := tr.Insert(base.Key(i), 0); err != nil {
					b.Fatal(err)
				}
			}
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := base.Key(i % n)
					_ = tr.Delete(k)
					_ = tr.Insert(k, 0)
				}
			}()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := tr.Search(base.Key((i * 40503) % n)); err != nil && !errors.Is(err, base.ErrNotFound) {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkAblationStore compares the in-memory node store against the
// paged (codec) store — the copy-on-write vs serialize design choice.
func BenchmarkAblationStore(b *testing.B) {
	build := func(b *testing.B, paged bool) base.Tree {
		var st node.Store = node.NewMemStore()
		if paged {
			var err error
			st, err = node.NewPagedStore(storage.NewMemStore(4096))
			if err != nil {
				b.Fatal(err)
			}
		}
		tr, err := blink.New(blink.Config{Store: st, MinPairs: 16})
		if err != nil {
			b.Fatal(err)
		}
		return tr
	}
	for _, c := range []struct {
		name  string
		paged bool
	}{{"memstore", false}, {"pagedstore", true}} {
		b.Run(c.name, func(b *testing.B) {
			tr := build(b, c.paged)
			for i := 0; i < 20000; i++ {
				if err := tr.Insert(base.Key(i*7), 0); err != nil {
					b.Fatal(err)
				}
			}
			benchMix(b, tr, 1<<18, workload.Balanced)
		})
	}
}

// BenchmarkAblationMinPairs sweeps the branching parameter k — fan-out
// vs height vs lock-contention granularity.
func BenchmarkAblationMinPairs(b *testing.B) {
	for _, k := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			st := node.NewMemStore()
			tr, err := blink.New(blink.Config{Store: st, MinPairs: k})
			if err != nil {
				b.Fatal(err)
			}
			const keySpace = 1 << 18
			for i := 0; i < 50000; i++ {
				key := base.Key(uint64(i) * (keySpace / 50000))
				if err := tr.Insert(key, 0); err != nil && !errors.Is(err, base.ErrDuplicate) {
					b.Fatal(err)
				}
			}
			benchMix(b, tr, keySpace, workload.Balanced)
		})
	}
}

// BenchmarkBulkLoadVsInsert compares bottom-up construction against
// repeated insertion for sorted initial loads.
func BenchmarkBulkLoadVsInsert(b *testing.B) {
	const n = 100000
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := blink.New(blink.Config{MinPairs: 16})
			if err != nil {
				b.Fatal(err)
			}
			j := 0
			if err := tr.BulkLoad(func() (base.Key, base.Value, bool) {
				if j >= n {
					return 0, 0, false
				}
				k := base.Key(j)
				j++
				return k, base.Value(k), true
			}, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n), "keys")
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, err := blink.New(blink.Config{MinPairs: 16})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				if err := tr.Insert(base.Key(j), base.Value(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(n), "keys")
	})
}

// BenchmarkE9ShardedScaling: the sharded front-end against the single
// tree (shards=1) under the concurrent balanced mix. Keys are spread
// over the full uint64 range so every partition receives traffic.
// Sharding wins twice: contention (locks, queues, root splits) is
// confined to one shard, and each shard is shallower than one big tree
// holding the same population.
func BenchmarkE9ShardedScaling(b *testing.B) {
	const population = 1 << 18
	const preload = 50000
	stride := ^uint64(0)/population + 1
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			idx, err := OpenSharded(n, Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			for i := 0; i < preload; i++ {
				k := Key(uint64(i) * (population / preload) * stride)
				if err := idx.Insert(k, Value(k)); err != nil && !errors.Is(err, ErrDuplicate) {
					b.Fatal(err)
				}
			}
			// Oversubscribe goroutines so lock contention — what
			// sharding relieves — shows even at low core counts.
			b.SetParallelism(8)
			benchMixDist(b, idx,
				workload.Stretch{Base: workload.Uniform{N: population}, Stride: stride},
				workload.Balanced)
		})
	}
}

// BenchmarkE10BatchApply: ApplyBatch's grouped dispatch against
// issuing the same cross-shard operations one at a time. The batch
// path spawns one goroutine per touched shard, so it trades fixed
// dispatch overhead for shard-parallel execution: it loses on a single
// core and wins as cores grow (the crossover is the number of cores
// needed to amortize ~3µs of scheduling per shard group).
func BenchmarkE10BatchApply(b *testing.B) {
	const population = 1 << 18
	const batchSize = 512
	stride := ^uint64(0)/population + 1
	build := func(b *testing.B) (*Sharded, []BatchOp) {
		idx, err := OpenSharded(8, Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < population; i += 4 {
			k := Key(uint64(i) * stride)
			if err := idx.Insert(k, Value(k)); err != nil {
				b.Fatal(err)
			}
		}
		ops := make([]BatchOp, batchSize)
		for i := range ops {
			ops[i] = BatchOp{Kind: BatchSearch, Key: Key(uint64(i*509%population) * stride)}
		}
		return idx, ops
	}
	b.Run("point", func(b *testing.B) {
		idx, ops := build(b)
		defer idx.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, op := range ops {
				if _, err := idx.Search(op.Key); err != nil && !errors.Is(err, ErrNotFound) {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(batchSize), "ops/batch")
	})
	b.Run("batch", func(b *testing.B) {
		idx, ops := build(b)
		defer idx.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range idx.ApplyBatch(ops) {
				if res.Err != nil && !errors.Is(res.Err, ErrNotFound) {
					b.Fatal(res.Err)
				}
			}
		}
		b.ReportMetric(float64(batchSize), "ops/batch")
	})
}

// BenchmarkE11ConditionalWrites: E11 — the atomic conditional-write
// surface against its pre-API emulation. "atomic" upserts with one
// descent and one leaf lock; "emulated" is what callers had to write
// before: Search, then Delete+Insert on a hit or Insert on a miss —
// two to three descents and no atomicity. Run single-tree and sharded;
// the gap is the price of the emulation, and it widens with height and
// with shard-level parallelism (more concurrent writers per second
// paying the extra descents).
func BenchmarkE11ConditionalWrites(b *testing.B) {
	const keySpace = 1 << 18
	const preload = 50000
	build := func(b *testing.B, shards int) Index {
		var idx Index
		var err error
		if shards > 1 {
			idx, err = OpenSharded(shards, Options{})
		} else {
			idx, err = Open(Options{})
		}
		if err != nil {
			b.Fatal(err)
		}
		stride := ^uint64(0)/keySpace + 1
		for i := 0; i < preload; i++ {
			k := Key(uint64(i) * (keySpace / preload) * stride)
			if err := idx.Insert(k, Value(k)); err != nil && !errors.Is(err, ErrDuplicate) {
				b.Fatal(err)
			}
		}
		return idx
	}
	drive := func(b *testing.B, idx Index, emulated bool) {
		stride := ^uint64(0)/keySpace + 1
		var seed atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := seed.Add(1) * 104729
			i := 0
			for pb.Next() {
				// Write-heavy: 75% upsert, 25% read-modify-write.
				rng = rng*6364136223846793005 + 1442695040888963407
				k := Key((uint64(rng>>11) % keySpace) * stride)
				if i++; i%4 != 0 {
					if emulated {
						if _, err := idx.Search(k); err == nil {
							if err := idx.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
								b.Error(err)
								return
							}
						}
						if err := idx.Insert(k, Value(k)); err != nil && !errors.Is(err, ErrDuplicate) {
							b.Error(err)
							return
						}
					} else if _, _, err := idx.Upsert(k, Value(k)); err != nil {
						b.Error(err)
						return
					}
				} else {
					if emulated {
						v, err := idx.Search(k)
						if errors.Is(err, ErrNotFound) {
							continue
						}
						if err != nil {
							b.Error(err)
							return
						}
						if err := idx.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
							b.Error(err)
							return
						}
						if err := idx.Insert(k, v); err != nil && !errors.Is(err, ErrDuplicate) {
							b.Error(err)
							return
						}
					} else if _, err := idx.Update(k, func(v Value) Value { return v }); err != nil && !errors.Is(err, ErrNotFound) {
						b.Error(err)
						return
					}
				}
			}
		})
	}
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"tree", 1}, {"sharded=8", 8}} {
		for _, mode := range []struct {
			name     string
			emulated bool
		}{{"atomic", false}, {"emulated", true}} {
			b.Run(fmt.Sprintf("%s/%s", cfg.name, mode.name), func(b *testing.B) {
				idx := build(b, cfg.shards)
				defer idx.Close()
				drive(b, idx, mode.emulated)
			})
		}
	}
}

// BenchmarkE12Durability: E12 — the durability tax and how group
// commit amortizes it. Upserts against volatile vs WAL-backed indexes,
// single tree and sharded; durable runs report the achieved records
// per fsync. At parallelism the tax shrinks because concurrent
// appenders share each sync — the table form lives in
// harness.E12Durability / sagivbench.
func BenchmarkE12Durability(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		shards  int
		durable bool
	}{
		{"tree/volatile", 1, false},
		{"tree/durable", 1, true},
		{"sharded=8/volatile", 8, false},
		{"sharded=8/durable", 8, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := Options{MinPairs: 16}
			if cfg.durable {
				opts.Durable, opts.Dir = true, b.TempDir()
			}
			var idx Index
			var err error
			if cfg.shards > 1 {
				idx, err = OpenSharded(cfg.shards, opts)
			} else {
				idx, err = Open(opts)
			}
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			b.SetParallelism(8)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := uint64(seed.Add(1))
				i := uint64(0)
				for pb.Next() {
					k := Key((g<<32 | i) * 11400714819323198485)
					if _, _, err := idx.Upsert(k, Value(i)); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			if cfg.durable {
				if st, err := idx.Stats(); err == nil {
					b.ReportMetric(st.WAL.MeanGroup(), "recs/fsync")
				}
			}
		})
	}
}

// BenchmarkE13NetPipeline: E13 — point Upserts over TCP loopback
// through the pipelining client, by concurrent-caller depth. The
// client multiplexes the callers onto pipelined bursts and the server
// coalesces each burst into one shard-parallel ApplyBatch; throughput
// should rise steeply with depth (the table form with the in-process
// ceiling lives in harness.E13NetPipeline / sagivbench).
func BenchmarkE13NetPipeline(b *testing.B) {
	for _, depth := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			r, err := shard.NewRouter(8, shard.Options{MinPairs: 16})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			srv := server.New(r, server.Config{Addr: "127.0.0.1:0", Logf: func(string, ...any) {}})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			cl, err := client.Dial(srv.Addr().String(), client.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			ctx := context.Background()
			var seed atomic.Int64
			b.SetParallelism(depth) // RunParallel spawns depth×GOMAXPROCS callers
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := uint64(seed.Add(1))
				i := uint64(0)
				for pb.Next() {
					k := client.Key((g<<32 | i) * 11400714819323198485)
					if _, _, err := cl.Upsert(ctx, k, client.Value(i)); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			polls, reqs := srv.Metrics.Polls.Load(), srv.Metrics.Requests.Load()
			if polls > 0 {
				b.ReportMetric(float64(reqs)/float64(polls), "reqs/poll")
			}
		})
	}
}

// BenchmarkE14Replication: E14 — replicated write throughput and the
// drain it leaves behind. Upserts flow to a durable primary while a
// durable follower streams its WAL over TCP loopback; the reported
// extras are the records the follower still had to apply when the
// writers stopped (lag) and the time it took to drain them (the table
// form with follower read throughput lives in harness.E14Replication
// / sagivbench).
func BenchmarkE14Replication(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			rp, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Durable: true, Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer rp.Close()
			srv := server.New(rp, server.Config{Addr: "127.0.0.1:0", Logf: func(string, ...any) {}})
			if err := srv.Start(); err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			rf, err := shard.NewRouter(shards, shard.Options{MinPairs: 16, Durable: true, Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			defer rf.Close()
			fl, err := repl.NewFollower(rf, repl.FollowerConfig{Primary: srv.Addr().String()})
			if err != nil {
				b.Fatal(err)
			}
			fl.Start()
			defer fl.Stop()
			cl, err := client.Dial(srv.Addr().String(), client.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			ctx := context.Background()
			var seed atomic.Int64
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := uint64(seed.Add(1))
				i := uint64(0)
				for pb.Next() {
					k := client.Key((g<<32 | i) * 11400714819323198485)
					if _, _, err := cl.Upsert(ctx, k, client.Value(i)); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			b.StopTimer()
			var target uint64
			for i := 0; i < shards; i++ {
				target += rp.Engine(i).WAL().Stats().Records
			}
			lag := uint64(0)
			if a := fl.Stats().Applied; target > a {
				lag = target - a
			}
			drainStart := time.Now()
			for fl.Stats().Applied < target {
				if time.Since(drainStart) > 30*time.Second {
					b.Fatal("follower never drained")
				}
				time.Sleep(time.Millisecond)
			}
			b.ReportMetric(float64(lag), "lag-recs")
			b.ReportMetric(float64(time.Since(drainStart).Microseconds())/1000, "drain-ms")
		})
	}
}

// BenchmarkCoarseFloor pins the coarse baseline cost for reference.
func BenchmarkCoarseFloor(b *testing.B) {
	tr, err := coarse.New(16)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		if err := tr.Insert(base.Key(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	benchMix(b, tr, 1<<17, workload.Balanced)
}
