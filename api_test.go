package blinktree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// Facade-level coverage for the PR-2 API generation: conditional
// writes and range-over-func iteration on both front-ends, exercised
// through the shared Index interface so the two can never drift.

// buildBoth returns a single tree and a sharded index preloaded with
// the same random population, plus the sorted key list.
func buildBoth(t *testing.T, n int) (Index, Index, []Key) {
	t.Helper()
	tree := NewTree()
	shrd := NewSharded(4)
	t.Cleanup(func() { tree.Close(); shrd.Close() })
	rng := rand.New(rand.NewSource(99))
	seen := map[Key]bool{}
	var keys []Key
	for len(keys) < n {
		k := Key(rng.Uint64())
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		for _, idx := range []Index{tree, shrd} {
			if err := idx.Insert(k, Value(k)%1000); err != nil {
				t.Fatal(err)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return tree, shrd, keys
}

func TestConditionalWritesBothFrontEnds(t *testing.T) {
	tree, shrd, keys := buildBoth(t, 500)
	for name, idx := range map[string]Index{"tree": tree, "sharded": shrd} {
		t.Run(name, func(t *testing.T) {
			k := keys[17]
			old, existed, err := idx.Upsert(k, 5000)
			if err != nil || !existed || old != Value(k)%1000 {
				t.Fatalf("Upsert = (%d, %v, %v)", old, existed, err)
			}
			if v, loaded, err := idx.GetOrInsert(k, 1); err != nil || !loaded || v != 5000 {
				t.Fatalf("GetOrInsert = (%d, %v, %v)", v, loaded, err)
			}
			if v, err := idx.Update(k, func(v Value) Value { return v + 1 }); err != nil || v != 5001 {
				t.Fatalf("Update = (%d, %v)", v, err)
			}
			if ok, err := idx.CompareAndSwap(k, 5001, 5002); err != nil || !ok {
				t.Fatalf("CAS = (%v, %v)", ok, err)
			}
			if ok, err := idx.CompareAndSwap(k, 5001, 5003); err != nil || ok {
				t.Fatalf("stale CAS = (%v, %v)", ok, err)
			}
			if ok, err := idx.CompareAndDelete(k, 5002); err != nil || !ok {
				t.Fatalf("CAD = (%v, %v)", ok, err)
			}
			if _, err := idx.Search(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("key survived CAD: %v", err)
			}
			// Fresh-key upsert via the interface restores parity for the
			// iteration tests below.
			if _, existed, err := idx.Upsert(k, Value(k)%1000); err != nil || existed {
				t.Fatalf("re-Upsert = (%v, %v)", existed, err)
			}
			if _, err := idx.Update(99998, func(v Value) Value { return v }); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Update absent = %v", err)
			}
		})
	}
}

// TestIterationMatchesRangeBothFrontEnds is the acceptance criterion:
// All/Ascend agree exactly with callback Range, and Descend is its
// exact reversal, on both front-ends, over random windows.
func TestIterationMatchesRangeBothFrontEnds(t *testing.T) {
	tree, shrd, keys := buildBoth(t, 2000)
	rng := rand.New(rand.NewSource(5))
	for name, idx := range map[string]Index{"tree": tree, "sharded": shrd} {
		t.Run(name, func(t *testing.T) {
			windows := [][2]Key{{0, Key(^uint64(0))}}
			for i := 0; i < 20; i++ {
				lo, hi := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
				if hi < lo {
					lo, hi = hi, lo
				}
				windows = append(windows, [2]Key{lo, hi})
			}
			for _, w := range windows {
				lo, hi := w[0], w[1]
				var want []Key
				if err := idx.Range(lo, hi, func(k Key, v Value) bool {
					if v != Value(k)%1000 {
						t.Fatalf("Range pair (%d, %d)", k, v)
					}
					want = append(want, k)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				var asc []Key
				for k, v := range idx.Ascend(lo, hi) {
					if v != Value(k)%1000 {
						t.Fatalf("Ascend pair (%d, %d)", k, v)
					}
					asc = append(asc, k)
				}
				var desc []Key
				for k, v := range idx.Descend(hi, lo) {
					if v != Value(k)%1000 {
						t.Fatalf("Descend pair (%d, %d)", k, v)
					}
					desc = append(desc, k)
				}
				if len(asc) != len(want) || len(desc) != len(want) {
					t.Fatalf("window [%d, %d]: Range %d, Ascend %d, Descend %d",
						lo, hi, len(want), len(asc), len(desc))
				}
				for i := range want {
					if asc[i] != want[i] {
						t.Fatalf("Ascend[%d] = %d, want %d", i, asc[i], want[i])
					}
					if desc[len(desc)-1-i] != want[i] {
						t.Fatalf("Descend mismatch at %d", i)
					}
				}
			}
			// All covers everything.
			n := 0
			var prev Key
			for k := range idx.All() {
				if n > 0 && k <= prev {
					t.Fatalf("All not ascending: %d after %d", k, prev)
				}
				prev = k
				n++
			}
			if n != len(keys) {
				t.Fatalf("All saw %d of %d keys", n, len(keys))
			}
		})
	}
}

func TestReverseCursorsPublicAPI(t *testing.T) {
	tree, shrd, keys := buildBoth(t, 300)
	top := Key(^uint64(0))
	tc := tree.(*Tree).NewReverseCursor(top)
	sc := shrd.(*Sharded).NewReverseCursor(top)
	for i := len(keys) - 1; i >= 0; i-- {
		tk, _, tok := tc.Next()
		sk, _, sok := sc.Next()
		if !tok || !sok || tk != keys[i] || sk != keys[i] {
			t.Fatalf("reverse[%d]: tree (%d, %v), sharded (%d, %v), want %d",
				i, tk, tok, sk, sok, keys[i])
		}
	}
	if _, _, ok := tc.Next(); ok {
		t.Fatal("tree reverse cursor ran past the start")
	}
	if _, _, ok := sc.Next(); ok {
		t.Fatal("sharded reverse cursor ran past the start")
	}
}

func TestBatchConditionalPublicAPI(t *testing.T) {
	s := NewSharded(4)
	defer s.Close()
	keys := spreadKeys(8)
	res := s.ApplyBatch([]BatchOp{
		{Kind: BatchUpsert, Key: keys[0], Value: 10},
		{Kind: BatchGetOrInsert, Key: keys[0], Value: 99},
		{Kind: BatchCompareAndSwap, Key: keys[0], Old: 10, Value: 11},
		{Kind: BatchCompareAndDelete, Key: keys[0], Old: 11},
	})
	if res[0].Err != nil || res[0].OK {
		t.Fatalf("BatchUpsert = %+v", res[0])
	}
	if res[1].Err != nil || !res[1].OK || res[1].Value != 10 {
		t.Fatalf("BatchGetOrInsert = %+v", res[1])
	}
	if res[2].Err != nil || !res[2].OK {
		t.Fatalf("BatchCompareAndSwap = %+v", res[2])
	}
	if res[3].Err != nil || !res[3].OK {
		t.Fatalf("BatchCompareAndDelete = %+v", res[3])
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}
