// Package blinktree is a concurrent B-link tree with compression,
// implementing Yehoshua Sagiv's "Concurrent Operations on B*-Trees with
// Overtaking" (PODS 1985 / JCSS 33, 1986).
//
// The tree supports any number of concurrent searches, insertions and
// deletions. Searches take no locks; insertions and deletions lock at
// most one node at any instant (the paper's improvement over
// Lehman–Yao); and optional compression processes — running
// concurrently with everything else — merge or redistribute underfull
// nodes so that deletions do not degrade space utilization or height.
//
// Quick start:
//
//	t, err := blinktree.Open(blinktree.Options{})
//	if err != nil { ... }
//	defer t.Close()
//	_ = t.Insert(42, 420)
//	v, err := t.Search(42)
//	_ = t.Range(0, 100, func(k blinktree.Key, v blinktree.Value) bool {
//		fmt.Println(k, v)
//		return true
//	})
//
// By default compression runs in the background: deletions that leave a
// leaf underfull enqueue it, and worker goroutines compress it
// concurrently (§5.4 of the paper). Use CompressionManual and Compact
// for explicit control, or CompressionOff for the bare Lehman–Yao-style
// deletion regime.
package blinktree

import (
	"fmt"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/compress"
	"blinktree/internal/locks"
	"blinktree/internal/node"
	"blinktree/internal/reclaim"
	"blinktree/internal/storage"
)

// Key is a 64-bit search key; the full range is usable.
type Key = base.Key

// Value is the 64-bit payload stored with each key (the paper's
// "pointer to the record").
type Value = base.Value

// Sentinel errors returned by tree operations.
var (
	ErrNotFound  = base.ErrNotFound
	ErrDuplicate = base.ErrDuplicate
	ErrClosed    = base.ErrClosed
	ErrCorrupt   = base.ErrCorrupt
)

// CompressionMode selects how underfull nodes are repaired.
type CompressionMode int

// Compression modes.
const (
	// CompressionBackground runs worker goroutines that drain the
	// underfull queue concurrently with other operations (§5.4). The
	// default.
	CompressionBackground CompressionMode = iota
	// CompressionManual enqueues underfull nodes but compresses only
	// when Compact or DrainCompression is called.
	CompressionManual
	// CompressionOff never rebalances after deletions, exactly the
	// Lehman–Yao regime the paper improves on ([8], §4).
	CompressionOff
)

// Options configures Open. The zero value is a usable in-memory tree
// with background compression.
type Options struct {
	// MinPairs is the paper's k: nodes hold between k and 2k pairs.
	// Default 16.
	MinPairs int
	// Compression selects the repair mode. Default background.
	Compression CompressionMode
	// CompressorWorkers is the number of background compression
	// goroutines (§5.4 mode 2). Default 1. Ignored unless background.
	CompressorWorkers int
	// Path, when non-empty, stores nodes in a file at this path through
	// the page codec instead of in memory. PageSize (default 4096) and
	// CachePages (default 1024, LRU buffer pool; 0 disables caching)
	// control the paged store.
	Path       string
	PageSize   int
	CachePages int
	// RestartFromRoot disables the backtracking optimization for
	// wrong-node restarts (§5.2); restarts then always begin at the
	// root.
	RestartFromRoot bool
}

// Tree is a concurrent B-link tree. All methods are safe for concurrent
// use by any number of goroutines.
type Tree struct {
	inner   *blink.Tree
	store   node.Store
	lt      locks.Locker
	rec     *reclaim.Reclaimer
	comp    *compress.Compressor
	scanner *compress.Scanner
	mode    CompressionMode
	workers int
	pool    *storage.BufferPool
}

// Open creates a Tree per opts.
func Open(opts Options) (*Tree, error) {
	if opts.MinPairs == 0 {
		opts.MinPairs = blink.DefaultMinPairs
	}
	var st node.Store
	var pool *storage.BufferPool
	if opts.Path != "" {
		ps := opts.PageSize
		if ps == 0 {
			ps = storage.DefaultPageSize
		}
		if max := node.MaxPairs(ps); 2*opts.MinPairs > max {
			return nil, fmt.Errorf("blinktree: 2k=%d pairs exceed page capacity %d for page size %d",
				2*opts.MinPairs, max, ps)
		}
		fs, err := storage.NewFileStore(opts.Path, ps)
		if err != nil {
			return nil, err
		}
		var under storage.Store = fs
		cache := opts.CachePages
		if cache == 0 {
			cache = 1024
		}
		if cache > 0 {
			pool = storage.NewBufferPool(fs, cache)
			under = pool
		}
		paged, err := node.NewPagedStore(under)
		if err != nil {
			return nil, err
		}
		st = paged
	} else {
		st = node.NewMemStore()
	}

	lt := locks.NewTable()
	rec := reclaim.New(st.Free)
	pol := blink.RestartBacktrack
	if opts.RestartFromRoot {
		pol = blink.RestartFromRoot
	}
	inner, err := blink.New(blink.Config{
		Store:     st,
		Locks:     lt,
		MinPairs:  opts.MinPairs,
		Restart:   pol,
		Reclaimer: rec,
	})
	if err != nil {
		return nil, err
	}
	t := &Tree{
		inner:   inner,
		store:   st,
		lt:      lt,
		rec:     rec,
		mode:    opts.Compression,
		workers: opts.CompressorWorkers,
		pool:    pool,
	}
	t.scanner = compress.NewScanner(st, lt, opts.MinPairs, rec)
	if opts.Compression != CompressionOff {
		t.comp = compress.NewCompressor(st, lt, opts.MinPairs, rec)
		t.comp.Attach(inner)
		if opts.Compression == CompressionBackground {
			if t.workers <= 0 {
				t.workers = 1
			}
			t.comp.Start(t.workers)
		}
	}
	return t, nil
}

// Insert stores v under k; ErrDuplicate if k is present.
func (t *Tree) Insert(k Key, v Value) error { return t.inner.Insert(k, v) }

// Search returns the value stored under k, or ErrNotFound.
func (t *Tree) Search(k Key) (Value, error) { return t.inner.Search(k) }

// Delete removes k, or returns ErrNotFound.
func (t *Tree) Delete(k Key) error { return t.inner.Delete(k) }

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order,
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi Key, fn func(Key, Value) bool) error {
	return t.inner.Range(lo, hi, fn)
}

// Min returns the smallest stored pair, or ErrNotFound when empty.
func (t *Tree) Min() (Key, Value, error) { return t.inner.Min() }

// Max returns the largest stored pair, or ErrNotFound when empty.
func (t *Tree) Max() (Key, Value, error) { return t.inner.Max() }

// Len returns the number of stored pairs (exact when quiesced).
func (t *Tree) Len() int { return t.inner.Len() }

// Height returns the number of levels (1 for a root-leaf tree).
func (t *Tree) Height() int { return t.inner.Height() }

// Compact fully compresses the tree: it drains the underfull queue,
// then runs scan passes (§5.1) until every non-root node holds at least
// MinPairs pairs and the height is minimal, then frees retired pages.
// It may run concurrently with other operations, though it converges
// fastest quiesced.
func (t *Tree) Compact() error {
	if t.comp != nil {
		if err := t.comp.DrainOnce(); err != nil {
			return err
		}
	}
	if err := t.scanner.Compact(); err != nil {
		return err
	}
	_, err := t.rec.Collect()
	return err
}

// DrainCompression processes the pending underfull queue once without
// running full scan passes. No-op when compression is off.
func (t *Tree) DrainCompression() error {
	if t.comp == nil {
		return nil
	}
	if err := t.comp.DrainOnce(); err != nil {
		return err
	}
	_, err := t.rec.Collect()
	return err
}

// CollectGarbage frees pages retired by compression that no live
// operation can still reference (§5.3). Called automatically by
// Compact; long-running background deployments should call it
// periodically.
func (t *Tree) CollectGarbage() (int, error) { return t.rec.Collect() }

// Check validates every structural invariant. Run it quiesced.
func (t *Tree) Check() error { return t.inner.Check() }

// Close stops background compression and closes the store. The tree
// must not be used afterwards.
func (t *Tree) Close() error {
	if t.comp != nil && t.mode == CompressionBackground {
		t.comp.Stop()
	}
	if err := t.inner.Close(); err != nil {
		return err
	}
	return t.store.Close()
}

// Cursor iterates pairs in ascending key order. See blink.Cursor for
// the concurrent-mutation semantics (strictly ascending, each key at
// most once, no locks held).
type Cursor = blink.Cursor

// NewCursor returns a cursor positioned before the smallest key ≥ start.
func (t *Tree) NewCursor(start Key) *Cursor { return t.inner.NewCursor(start) }

// BulkLoad builds an empty tree bottom-up from a strictly ascending
// pair stream, packing nodes to the fill fraction (0 = fully packed).
// It is much faster than repeated Insert and requires exclusive access;
// the tree is fully concurrent afterwards.
func (t *Tree) BulkLoad(pairs func() (Key, Value, bool), fill float64) error {
	return t.inner.BulkLoad(pairs, fill)
}

// Stats aggregates the counters of the tree and its compressors.
type Stats struct {
	Tree       blink.StatsSnapshot
	Occupancy  blink.Occupancy
	Reclaim    reclaim.ReclaimStats
	QueueDepth int
	Merges     uint64
	Redist     uint64
	Collapses  uint64
	// CompressorMaxLocks is the high-water of simultaneous locks held
	// by compression (≤ 3 per the paper).
	CompressorMaxLocks uint64
}

// Stats returns a snapshot of operation and compression counters.
// Occupancy is gathered with a full walk; avoid calling it in hot
// loops.
func (t *Tree) Stats() (Stats, error) {
	occ, err := t.inner.OccupancyStats()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tree:      t.inner.Stats(),
		Occupancy: occ,
		Reclaim:   t.rec.Stats(),
	}
	sc := t.scanner.Stats()
	s.Merges += sc.Merges.Load()
	s.Redist += sc.Redistributions.Load()
	s.Collapses += sc.RootCollapses.Load()
	if fp := sc.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
		s.CompressorMaxLocks = fp.MaxHeld
	}
	if t.comp != nil {
		cs := t.comp.Stats()
		s.Merges += cs.Merges.Load()
		s.Redist += cs.Redistributions.Load()
		s.Collapses += cs.RootCollapses.Load()
		s.QueueDepth = t.comp.Queue().Len()
		if fp := cs.Footprint.Snapshot(); fp.MaxHeld > s.CompressorMaxLocks {
			s.CompressorMaxLocks = fp.MaxHeld
		}
	}
	return s, nil
}
