// Package blinktree is a concurrent B-link tree with compression,
// implementing Yehoshua Sagiv's "Concurrent Operations on B*-Trees with
// Overtaking" (PODS 1985 / JCSS 33, 1986).
//
// The tree supports any number of concurrent searches, insertions and
// deletions. Searches take no locks; insertions and deletions lock at
// most one node at any instant (the paper's improvement over
// Lehman–Yao); and optional compression processes — running
// concurrently with everything else — merge or redistribute underfull
// nodes so that deletions do not degrade space utilization or height.
//
// Two front-ends implement the same Index interface:
//
//   - NewTree / Open: one tree, the paper-faithful configuration.
//   - NewSharded / OpenSharded: N independent trees range-partitioned
//     over the keyspace, each with its own lock table, compression
//     queue and reclamation epoch — the scaled configuration for
//     write-heavy multicore workloads.
//
// Quick start:
//
//	t, err := blinktree.Open(blinktree.Options{})
//	if err != nil { ... }
//	defer t.Close()
//	_ = t.Insert(42, 420)
//	v, err := t.Search(42)
//	for k, v := range t.All() {
//		fmt.Println(k, v)
//	}
//
// Beyond the paper's Search/Insert/Delete, both front-ends expose
// atomic conditional writes — the read-modify-write shapes serving
// workloads are made of — implemented inside the same protocol (one
// descent, the decision under the single held leaf lock):
//
//	old, existed, _ := t.Upsert(42, 421)              // put, returning what was there
//	v, loaded, _ := t.GetOrInsert(7, 70)              // the cache idiom
//	v, _ = t.Update(42, func(v Value) Value { return v + 1 })
//	swapped, _ := t.CompareAndSwap(42, v, 1000)
//	deleted, _ := t.CompareAndDelete(7, 70)
//
// Iteration is Go 1.23 range-over-func: All, Ascend(lo, hi) and
// Descend(hi, lo) on both front-ends, plus explicit Cursor /
// ReverseCursor types; the callback Range remains.
//
// Durability is opt-in: Options{Durable: true, Dir: "..."} gives
// either front-end a group-commit write-ahead log and crash recovery —
// every mutation is acknowledged only after its log record is fsynced
// (batched across concurrent writers into one sync), Open/OpenSharded
// on the same Dir recovers "checkpoint + log suffix", and Checkpoint()
// truncates the log without blocking readers or writers:
//
//	t, _ := blinktree.Open(blinktree.Options{Durable: true, Dir: "/data/idx"})
//	_ = t.Insert(42, 420)   // returns after the record is on disk
//	_ = t.Checkpoint()      // snapshot + log truncation
//	_ = t.Close()
//	t, _ = blinktree.Open(blinktree.Options{Durable: true, Dir: "/data/idx"})
//	// state is back, including after a crash instead of Close
//
// By default compression runs in the background: deletions that leave a
// leaf underfull enqueue it, and worker goroutines compress it
// concurrently (§5.4 of the paper). Use CompressionManual and Compact
// for explicit control, or CompressionOff for the bare Lehman–Yao-style
// deletion regime.
//
// To serve an index over the network instead of in-process, run
// cmd/blinkserver and connect with the client package — the same
// operation surface, sentinel errors included, over a pipelined
// binary protocol (docs/protocol.md). See ARCHITECTURE.md for how
// the layers fit together.
package blinktree

import (
	"io"
	"iter"

	"blinktree/internal/base"
	"blinktree/internal/blink"
	"blinktree/internal/shard"
	"blinktree/internal/verify"
)

// Key is a 64-bit search key; the full range is usable.
type Key = base.Key

// Value is the 64-bit payload stored with each key (the paper's
// "pointer to the record").
type Value = base.Value

// Sentinel errors returned by tree operations.
var (
	ErrNotFound  = base.ErrNotFound
	ErrDuplicate = base.ErrDuplicate
	ErrClosed    = base.ErrClosed
	ErrCorrupt   = base.ErrCorrupt
)

// CompressionMode selects how underfull nodes are repaired. See the
// mode constants for the three regimes.
type CompressionMode = shard.CompressionMode

// Compression modes.
const (
	// CompressionBackground runs worker goroutines that drain the
	// underfull queue concurrently with other operations (§5.4). The
	// default.
	CompressionBackground = shard.CompressionBackground
	// CompressionManual enqueues underfull nodes but compresses only
	// when Compact or DrainCompression is called.
	CompressionManual = shard.CompressionManual
	// CompressionOff never rebalances after deletions, exactly the
	// Lehman–Yao regime the paper improves on ([8], §4).
	CompressionOff = shard.CompressionOff
)

// Options configures Open and OpenSharded. The zero value is a usable
// in-memory tree with background compression. Aliased (like
// CompressionMode and Stats) so the facade cannot drift from the
// engine: see shard.Options for the field docs.
type Options = shard.Options

// Iterator walks pairs in ascending key order: strictly ascending
// keys, each key at most once, no locks held, concurrent mutations may
// or may not be observed. Implemented by both front-ends' cursors.
type Iterator interface {
	// Next advances to the following pair, returning false at the end
	// or on error (check Err).
	Next() (Key, Value, bool)
	// Seek repositions before the smallest key ≥ k; backwards is
	// allowed.
	Seek(k Key)
	// Err returns the error that terminated iteration, if any.
	Err() error
}

// Index is the interface shared by the single tree (Tree) and the
// sharded front-end (Sharded): the paper's logical operations plus the
// maintenance surface. All methods are safe for concurrent use; Check,
// BulkLoad, Snapshot and Restore are exact only when quiesced.
type Index interface {
	// Insert stores v under k; ErrDuplicate if k is present.
	Insert(k Key, v Value) error
	// Search returns the value stored under k, or ErrNotFound.
	Search(k Key) (Value, error)
	// Delete removes k, or returns ErrNotFound.
	Delete(k Key) error
	// Upsert stores v under k unconditionally, returning the previous
	// value and whether one existed. Atomic: one descent, the decision
	// under the single held leaf lock.
	Upsert(k Key, v Value) (old Value, existed bool, err error)
	// GetOrInsert returns the value under k, inserting v first when k
	// is absent; loaded reports whether it was already present.
	GetOrInsert(k Key, v Value) (actual Value, loaded bool, err error)
	// Update atomically replaces the value under k with fn(current) and
	// returns the new value, or ErrNotFound. fn runs under the held
	// leaf lock and may be re-invoked after internal restarts; keep it
	// fast and side-effect free.
	Update(k Key, fn func(Value) Value) (Value, error)
	// CompareAndSwap replaces k's value with new only when it equals
	// old. A missing key is ErrNotFound; a mismatch is (false, nil).
	CompareAndSwap(k Key, old, new Value) (swapped bool, err error)
	// CompareAndDelete removes k only when its value equals old, with
	// the same convention as CompareAndSwap.
	CompareAndDelete(k Key, old Value) (deleted bool, err error)
	// Range calls fn for each pair with lo ≤ key ≤ hi in ascending
	// order, stopping early if fn returns false.
	Range(lo, hi Key, fn func(Key, Value) bool) error
	// All returns a range-over-func iterator over every pair in
	// ascending key order: for k, v := range idx.All() { ... }.
	All() iter.Seq2[Key, Value]
	// Ascend returns an iterator over lo ≤ key ≤ hi, ascending.
	Ascend(lo, hi Key) iter.Seq2[Key, Value]
	// Descend returns an iterator over lo ≤ key ≤ hi in descending
	// order, from hi down to lo.
	Descend(hi, lo Key) iter.Seq2[Key, Value]
	// Min returns the smallest stored pair, or ErrNotFound when empty.
	Min() (Key, Value, error)
	// Max returns the largest stored pair, or ErrNotFound when empty.
	Max() (Key, Value, error)
	// Len returns the number of stored pairs (exact when quiesced).
	Len() int
	// Height returns the number of levels (the max across shards).
	Height() int
	// NewIterator returns an Iterator positioned before the smallest
	// key ≥ start.
	NewIterator(start Key) Iterator
	// BulkLoad builds an empty index bottom-up from a strictly
	// ascending pair stream; see Tree.BulkLoad.
	BulkLoad(pairs func() (Key, Value, bool), fill float64) error
	// Compact fully compresses the index; see Tree.Compact.
	Compact() error
	// DrainCompression processes pending underfull queues once.
	DrainCompression() error
	// CollectGarbage frees retired pages no live operation can still
	// reference (§5.3).
	CollectGarbage() (int, error)
	// Check validates every structural invariant. Run it quiesced.
	Check() error
	// Stats returns a snapshot of operation and compression counters.
	Stats() (Stats, error)
	// Snapshot streams all pairs in ascending order to w.
	Snapshot(w io.Writer) error
	// Restore loads a Snapshot stream into the (fresh) index.
	Restore(r io.Reader) error
	// Checkpoint makes the current state durable as a snapshot and
	// truncates the write-ahead log (no-op on a volatile index). It
	// runs concurrently with readers and writers.
	Checkpoint() error
	// Close releases resources; the index must not be used afterwards.
	Close() error
}

// Compile-time checks that both front-ends satisfy the shared
// interfaces (and, for mixed fleets, the internal baseline contract).
var (
	_ Index     = (*Tree)(nil)
	_ Index     = (*Sharded)(nil)
	_ base.Tree = (Index)(nil)
	_ Iterator  = (*Cursor)(nil)
	_ Iterator  = (*ShardedCursor)(nil)
)

// Tree is a concurrent B-link tree — the paper-faithful single-tree
// front-end. All methods are safe for concurrent use by any number of
// goroutines.
type Tree struct {
	eng *shard.Engine
}

// Open creates a Tree per opts. With Options.Durable set, Open
// recovers any state previously logged under Options.Dir (newest
// checkpoint plus the surviving log suffix) before returning; a Dir
// written by a sharded index is rejected (the on-disk layout records
// its topology).
func Open(opts Options) (*Tree, error) {
	if opts.Durable && opts.Dir != "" {
		if err := shard.EnsureLayout(opts.Dir, 1); err != nil {
			return nil, err
		}
	}
	eng, err := shard.OpenEngine(opts)
	if err != nil {
		return nil, err
	}
	return &Tree{eng: eng}, nil
}

// NewTree returns a default in-memory Tree (background compression,
// k = 16). It panics on failure, which the default configuration
// cannot produce; use Open to handle errors or set options.
func NewTree() *Tree {
	t, err := Open(Options{})
	if err != nil {
		panic(err)
	}
	return t
}

// Insert stores v under k; ErrDuplicate if k is present.
func (t *Tree) Insert(k Key, v Value) error { return t.eng.Insert(k, v) }

// Search returns the value stored under k, or ErrNotFound.
func (t *Tree) Search(k Key) (Value, error) { return t.eng.Tree.Search(k) }

// Delete removes k, or returns ErrNotFound.
func (t *Tree) Delete(k Key) error { return t.eng.Delete(k) }

// Upsert stores v under k unconditionally, returning the previous
// value and whether one existed. It is atomic under the paper's
// protocol — one descent, the present/absent decision taken while the
// single leaf lock is held — unlike a Search+Insert emulation.
func (t *Tree) Upsert(k Key, v Value) (Value, bool, error) { return t.eng.Upsert(k, v) }

// GetOrInsert returns the value under k, inserting v first when k is
// absent; loaded reports whether it was already present.
func (t *Tree) GetOrInsert(k Key, v Value) (Value, bool, error) {
	return t.eng.GetOrInsert(k, v)
}

// Update atomically replaces the value under k with fn(current) and
// returns the new value, or ErrNotFound. fn runs under the held leaf
// lock and may be re-invoked after internal restarts; keep it fast and
// side-effect free.
func (t *Tree) Update(k Key, fn func(Value) Value) (Value, error) {
	return t.eng.Update(k, fn)
}

// CompareAndSwap replaces k's value with new only when it equals old.
// A missing key is ErrNotFound; a mismatch is (false, nil).
func (t *Tree) CompareAndSwap(k Key, old, new Value) (bool, error) {
	return t.eng.CompareAndSwap(k, old, new)
}

// CompareAndDelete removes k only when its value equals old, with the
// same convention as CompareAndSwap.
func (t *Tree) CompareAndDelete(k Key, old Value) (bool, error) {
	return t.eng.CompareAndDelete(k, old)
}

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order,
// stopping early if fn returns false.
func (t *Tree) Range(lo, hi Key, fn func(Key, Value) bool) error {
	return t.eng.Tree.Range(lo, hi, fn)
}

// All returns a range-over-func iterator over every pair in ascending
// key order. It holds no locks; see NewCursor for the semantics under
// concurrent mutation.
func (t *Tree) All() iter.Seq2[Key, Value] { return t.eng.Tree.All() }

// Ascend returns an iterator over the pairs with lo ≤ key ≤ hi in
// ascending key order.
func (t *Tree) Ascend(lo, hi Key) iter.Seq2[Key, Value] { return t.eng.Tree.Ascend(lo, hi) }

// Descend returns an iterator over the pairs with lo ≤ key ≤ hi in
// descending key order, from hi down to lo. Reverse order has no link
// chain to ride (splits only ever create right links), so each leaf
// hop costs one O(height) descent; see NewReverseCursor.
func (t *Tree) Descend(hi, lo Key) iter.Seq2[Key, Value] { return t.eng.Tree.Descend(hi, lo) }

// Min returns the smallest stored pair, or ErrNotFound when empty.
func (t *Tree) Min() (Key, Value, error) { return t.eng.Tree.Min() }

// Max returns the largest stored pair, or ErrNotFound when empty.
func (t *Tree) Max() (Key, Value, error) { return t.eng.Tree.Max() }

// Len returns the number of stored pairs (exact when quiesced).
func (t *Tree) Len() int { return t.eng.Tree.Len() }

// Height returns the number of levels (1 for a root-leaf tree).
func (t *Tree) Height() int { return t.eng.Tree.Height() }

// Compact fully compresses the tree: it drains the underfull queue,
// then runs scan passes (§5.1) until every non-root node holds at least
// MinPairs pairs and the height is minimal, then frees retired pages.
// It may run concurrently with other operations, though it converges
// fastest quiesced.
func (t *Tree) Compact() error { return t.eng.Compact() }

// DrainCompression processes the pending underfull queue once without
// running full scan passes. No-op when compression is off.
func (t *Tree) DrainCompression() error { return t.eng.DrainCompression() }

// CollectGarbage frees pages retired by compression that no live
// operation can still reference (§5.3). Called automatically by
// Compact; long-running background deployments should call it
// periodically.
func (t *Tree) CollectGarbage() (int, error) { return t.eng.CollectGarbage() }

// Check validates every structural invariant. Run it quiesced.
func (t *Tree) Check() error { return t.eng.Tree.Check() }

// Checkpoint writes the tree's current state as a durable snapshot
// and truncates the write-ahead log to the uncovered suffix, bounding
// recovery time. It runs concurrently with readers and writers (the
// snapshot is fuzzy; the kept log suffix replays idempotently on top).
// No-op on a volatile tree; see Options.Durable.
func (t *Tree) Checkpoint() error { return t.eng.Checkpoint() }

// Close stops background compression and closes the store. The tree
// must not be used afterwards.
func (t *Tree) Close() error { return t.eng.Close() }

// Cursor iterates pairs in ascending key order. See blink.Cursor for
// the concurrent-mutation semantics (strictly ascending, each key at
// most once, no locks held).
type Cursor = blink.Cursor

// ReverseCursor iterates pairs in descending key order: strictly
// descending, each key at most once, no locks held. Each leaf hop
// re-descends for the predecessor (B-link trees have no left links),
// costing O(height) per leaf instead of one link read.
type ReverseCursor = blink.ReverseCursor

// NewCursor returns a cursor positioned before the smallest key ≥ start.
func (t *Tree) NewCursor(start Key) *Cursor { return t.eng.Tree.NewCursor(start) }

// NewReverseCursor returns a cursor positioned before the largest key
// ≤ start.
func (t *Tree) NewReverseCursor(start Key) *ReverseCursor {
	return t.eng.Tree.NewReverseCursor(start)
}

// NewIterator returns the same cursor as NewCursor behind the Iterator
// interface.
func (t *Tree) NewIterator(start Key) Iterator { return t.NewCursor(start) }

// BulkLoad builds an empty tree bottom-up from a strictly ascending
// pair stream, packing nodes to the fill fraction (0 = fully packed).
// It is much faster than repeated Insert and requires exclusive access;
// the tree is fully concurrent afterwards.
func (t *Tree) BulkLoad(pairs func() (Key, Value, bool), fill float64) error {
	return t.eng.BulkLoad(pairs, fill)
}

// Stats aggregates the counters of a front-end and its compressors.
// For a sharded index, counters sum across shards, lock high-waters
// take the shard maximum, and occupancy merges node-weighted.
type Stats = shard.Stats

// Stats returns a snapshot of operation and compression counters.
// Occupancy is gathered with a full walk; avoid calling it in hot
// loops.
func (t *Tree) Stats() (Stats, error) { return t.eng.Stats() }

// Verified reports whether the tree maintains the integrity hash tree
// (Options.Verified).
func (t *Tree) Verified() bool { return t.eng.Verified() }

// Root returns the tree's state root: the deterministic hash of its
// full content under the integrity layer's hash tree. Two trees with
// the same pairs (and bucketing) have the same root. Concurrent with
// writers the result is fuzzy-but-recent; quiesced it is exact.
// Errors unless Options.Verified was set.
func (t *Tree) Root() ([32]byte, error) {
	r, err := t.eng.VerifyRoot()
	if err != nil {
		return [32]byte{}, err
	}
	return verify.CombineShards([]verify.Hash{r}, t.eng.VerifyBuckets()), nil
}

// Sharded is the scaled front-end: N independent trees
// range-partitioned over the keyspace (shard i owns keys
// [i·2^64/N, (i+1)·2^64/N)). Point operations route to one shard;
// ordered operations stitch shards in key order; each shard has its
// own lock table, compression queue and reclamation epoch, so
// contention stays within a shard. All methods are safe for concurrent
// use by any number of goroutines.
type Sharded struct {
	r *shard.Router
}

// OpenSharded creates a sharded index of n ≥ 1 shards, each configured
// per opts. With a non-empty Path, shard i persists to
// "<path>.shard<i>". With Options.Durable, shard i logs and recovers
// independently under "<dir>/shard<i>" — one WAL segment set per
// shard, so shards group-commit without cross-shard coordination; the
// shard count must match across reopenings of the same Dir.
func OpenSharded(n int, opts Options) (*Sharded, error) {
	r, err := shard.NewRouter(n, opts)
	if err != nil {
		return nil, err
	}
	return &Sharded{r: r}, nil
}

// NewSharded returns a default in-memory sharded index of n shards
// (background compression, k = 16 per shard). It panics when n < 1;
// use OpenSharded to handle errors or set options.
func NewSharded(n int) *Sharded {
	s, err := OpenSharded(n, Options{})
	if err != nil {
		panic(err)
	}
	return s
}

// Shards returns the number of partitions.
func (s *Sharded) Shards() int { return s.r.Shards() }

// Insert stores v under k in k's shard; ErrDuplicate if k is present.
func (s *Sharded) Insert(k Key, v Value) error { return s.r.Insert(k, v) }

// Search returns the value stored under k, or ErrNotFound.
func (s *Sharded) Search(k Key) (Value, error) { return s.r.Search(k) }

// Delete removes k from its shard, or returns ErrNotFound.
func (s *Sharded) Delete(k Key) error { return s.r.Delete(k) }

// Upsert stores v under k in k's shard, returning the previous value
// and whether one existed. Atomic within the owning shard, like every
// point operation.
func (s *Sharded) Upsert(k Key, v Value) (Value, bool, error) { return s.r.Upsert(k, v) }

// GetOrInsert returns the value under k, inserting v first when k is
// absent from its shard.
func (s *Sharded) GetOrInsert(k Key, v Value) (Value, bool, error) { return s.r.GetOrInsert(k, v) }

// Update atomically replaces the value under k with fn(current) in k's
// shard, or returns ErrNotFound.
func (s *Sharded) Update(k Key, fn func(Value) Value) (Value, error) { return s.r.Update(k, fn) }

// CompareAndSwap replaces k's value with new only when it equals old.
func (s *Sharded) CompareAndSwap(k Key, old, new Value) (bool, error) {
	return s.r.CompareAndSwap(k, old, new)
}

// CompareAndDelete removes k only when its value equals old.
func (s *Sharded) CompareAndDelete(k Key, old Value) (bool, error) {
	return s.r.CompareAndDelete(k, old)
}

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order
// across all shards, stopping early if fn returns false.
func (s *Sharded) Range(lo, hi Key, fn func(Key, Value) bool) error {
	return s.r.Range(lo, hi, fn)
}

// All returns a range-over-func iterator over every pair of every
// shard in ascending key order.
func (s *Sharded) All() iter.Seq2[Key, Value] { return s.r.All() }

// Ascend returns an iterator over lo ≤ key ≤ hi, ascending, crossing
// shard boundaries transparently.
func (s *Sharded) Ascend(lo, hi Key) iter.Seq2[Key, Value] { return s.r.Ascend(lo, hi) }

// Descend returns an iterator over lo ≤ key ≤ hi in descending order,
// from hi down to lo, visiting shards right to left.
func (s *Sharded) Descend(hi, lo Key) iter.Seq2[Key, Value] { return s.r.Descend(hi, lo) }

// Min returns the smallest stored pair, or ErrNotFound when empty.
func (s *Sharded) Min() (Key, Value, error) { return s.r.Min() }

// Max returns the largest stored pair, or ErrNotFound when empty.
func (s *Sharded) Max() (Key, Value, error) { return s.r.Max() }

// Len returns the total number of stored pairs (exact when quiesced).
func (s *Sharded) Len() int { return s.r.Len() }

// Height returns the tallest shard's level count.
func (s *Sharded) Height() int { return s.r.Height() }

// ShardedCursor iterates all shards in ascending key order by
// stitching per-shard cursors end to end.
type ShardedCursor = shard.Cursor

// ShardedReverseCursor iterates all shards in descending key order,
// stitching per-shard reverse cursors right to left.
type ShardedReverseCursor = shard.ReverseCursor

// NewCursor returns a cursor positioned before the smallest key ≥
// start, in whichever shard owns it — routed directly, like point
// operations, with no probes of other shards.
func (s *Sharded) NewCursor(start Key) *ShardedCursor { return s.r.NewCursor(start) }

// NewReverseCursor returns a cursor positioned before the largest key
// ≤ start, in whichever shard owns it.
func (s *Sharded) NewReverseCursor(start Key) *ShardedReverseCursor {
	return s.r.NewReverseCursor(start)
}

// NewIterator returns the same cursor as NewCursor behind the Iterator
// interface.
func (s *Sharded) NewIterator(start Key) Iterator { return s.NewCursor(start) }

// BulkLoad builds all shards bottom-up from one strictly ascending
// pair stream, cutting it at partition boundaries. Same contract as
// Tree.BulkLoad: empty index, exclusive access.
func (s *Sharded) BulkLoad(pairs func() (Key, Value, bool), fill float64) error {
	return s.r.BulkLoad(pairs, fill)
}

// BatchOp is one operation of an ApplyBatch call.
type BatchOp = shard.Op

// BatchResult is the outcome of one batched operation.
type BatchResult = shard.Result

// Batched operation kinds for BatchOp.Kind. Update is not batchable
// (it carries a function); every other logical operation is.
const (
	BatchSearch           = shard.OpSearch
	BatchInsert           = shard.OpInsert
	BatchDelete           = shard.OpDelete
	BatchUpsert           = shard.OpUpsert
	BatchGetOrInsert      = shard.OpGetOrInsert
	BatchCompareAndSwap   = shard.OpCompareAndSwap
	BatchCompareAndDelete = shard.OpCompareAndDelete
)

// ApplyBatch groups ops by destination shard and dispatches each
// group on its own goroutine, returning results positionally aligned
// with ops. Errors are per-operation; a failed op does not stop the
// batch. For cross-shard batches this amortizes routing and runs
// disjoint shards truly in parallel.
func (s *Sharded) ApplyBatch(ops []BatchOp) []BatchResult { return s.r.ApplyBatch(ops) }

// Compact fully compresses every shard; see Tree.Compact.
func (s *Sharded) Compact() error { return s.r.Compact() }

// DrainCompression drains every shard's underfull queue once.
func (s *Sharded) DrainCompression() error { return s.r.DrainCompression() }

// CollectGarbage frees retired pages in every shard, returning the
// total freed.
func (s *Sharded) CollectGarbage() (int, error) { return s.r.CollectGarbage() }

// Check validates every shard's structural invariants. Run it
// quiesced.
func (s *Sharded) Check() error { return s.r.Check() }

// Checkpoint checkpoints every shard independently — each writes its
// own snapshot and truncates its own log, with no cross-shard barrier.
// No-op on a volatile index; see Options.Durable.
func (s *Sharded) Checkpoint() error { return s.r.Checkpoint() }

// Stats aggregates all shards' counters; see Stats for the merge
// rules. Occupancy walks every shard; avoid calling it in hot loops.
func (s *Sharded) Stats() (Stats, error) { return s.r.Stats() }

// Verified reports whether the index maintains the integrity hash
// tree (Options.Verified).
func (s *Sharded) Verified() bool { return s.r.Verified() }

// Root returns the index state root — per-shard roots combined into
// one engine root. Same determinism contract as Tree.Root: equal
// content (under equal shard count and bucketing) means equal root.
func (s *Sharded) Root() ([32]byte, error) { return s.r.Root() }

// ShardStat is one shard's row of ShardStats.
type ShardStat = shard.ShardStat

// ShardStats reports routing balance and size per shard, cheaply (no
// occupancy walk). Use it to spot partition skew.
func (s *Sharded) ShardStats() []ShardStat { return s.r.ShardStats() }

// Close closes every shard, returning the first error but closing
// all. The index must not be used afterwards.
func (s *Sharded) Close() error { return s.r.Close() }
