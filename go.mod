module blinktree

go 1.23
