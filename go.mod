module blinktree

go 1.22
