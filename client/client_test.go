package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"blinktree/client"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// startServer binds a fresh server+router on addr ("127.0.0.1:0" for
// ephemeral) and registers cleanup.
func startServer(t *testing.T, addr string, shards int) (*server.Server, *shard.Router) {
	t.Helper()
	r, err := shard.NewRouter(shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New(r, server.Config{Addr: addr, Logf: func(string, ...any) {}})
	if err := s.Start(); err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		r.Close()
	})
	return s, r
}

func TestDialErrors(t *testing.T) {
	// Nothing listening.
	if _, err := client.Dial("127.0.0.1:1", client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial to closed port should fail")
	}
	// Listening, but not speaking the protocol.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fmt.Fprint(c, "HTTP/1.1 400 Bad Request\r\n\r\n")
			c.Close()
		}
	}()
	if _, err := client.Dial(ln.Addr().String(), client.Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial to non-blinkserver should fail the hello")
	}
}

func TestRetryOnReconnectForReads(t *testing.T) {
	s, r := startServer(t, "127.0.0.1:0", 2)
	addr := s.Addr().String()
	ctx := context.Background()
	c, err := client.Dial(addr, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(ctx, 7, 70); err != nil {
		t.Fatal(err)
	}

	// Kill the server, restart on the SAME port with the same router:
	// the next idempotent read must transparently reconnect and succeed.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := server.New(r, server.Config{Addr: addr, Logf: func(string, ...any) {}})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	v, err := c.Search(ctx, 7)
	if err != nil || v != 70 {
		t.Fatalf("search after reconnect: %d %v", v, err)
	}
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
}

func TestMutationsAreNotRetried(t *testing.T) {
	s, _ := startServer(t, "127.0.0.1:0", 1)
	ctx := context.Background()
	c, err := client.Dial(s.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert(ctx, 1, 1); err != nil {
		t.Fatal(err)
	}
	s.Close() // no restart: the write path has nowhere to go
	err = c.Insert(ctx, 2, 2)
	if err == nil {
		t.Fatal("insert against a dead server should fail")
	}
	if errors.Is(err, client.ErrDuplicate) || errors.Is(err, client.ErrNotFound) {
		t.Fatalf("expected a transport error, got %v", err)
	}
}

func TestConcurrentCancellation(t *testing.T) {
	s, _ := startServer(t, "127.0.0.1:0", 4)
	c, err := client.Dial(s.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Half the goroutines run with an already-cancelled context, half
	// work normally; the connection must survive all of it.
	var wg sync.WaitGroup
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	live := context.Background()
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if w%2 == 0 {
					if _, _, err := c.Upsert(live, client.Key(w*100+i), 1); err != nil {
						t.Error(err)
						return
					}
				} else if err := c.Ping(cancelled); !errors.Is(err, context.Canceled) {
					t.Errorf("cancelled ping: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	n, err := c.Len(context.Background())
	if err != nil || n != 8*100 {
		t.Fatalf("len after cancellation storm: %d %v", n, err)
	}
}

// TestConnectionChurnUnderPointOps hammers the pooled point-op path
// while the server is repeatedly killed and restarted on the same
// port. It exists for the race detector: a call completed by a
// connection's fail() may still be referenced by the dead writer
// goroutine (its swapped-out burst holds the request bytes), so the
// client must not return that call to the pool — a new owner's
// encodePoint would race with the dead writer's read.
func TestConnectionChurnUnderPointOps(t *testing.T) {
	s, r := startServer(t, "127.0.0.1:0", 2)
	addr := s.Addr().String()
	ctx := context.Background()
	c, err := client.Dial(addr, client.Options{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Transport errors are expected while the server is
				// down; what matters is that no call storage is reused
				// while a dead connection still references it.
				c.Search(ctx, client.Key(w))
				c.Upsert(ctx, client.Key(1000+w*1000+i%100), client.Value(i))
				c.Ping(ctx)
			}
		}(w)
	}

	cur := s
	defer func() { cur.Close() }()
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		cur.Close()
		next := server.New(r, server.Config{Addr: addr, Logf: func(string, ...any) {}})
		if err := next.Start(); err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		cur = next
	}
	close(stop)
	wg.Wait()

	// The pool must still work end to end once the churn stops.
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after churn: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	s, _ := startServer(t, "127.0.0.1:0", 1)
	c, err := client.Dial(s.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrClientClosed) {
		t.Fatalf("ping after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBatchTooLarge(t *testing.T) {
	s, _ := startServer(t, "127.0.0.1:0", 1)
	c, err := client.Dial(s.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ops := make([]client.Op, 10000)
	for i := range ops {
		ops[i] = client.Op{Kind: client.OpSearch, Key: client.Key(i)}
	}
	if _, err := c.Batch(context.Background(), ops); err == nil {
		t.Fatal("oversized batch should be rejected client-side")
	}
}
