package client_test

import (
	"context"
	"net"
	"testing"

	"blinktree/client"
	"blinktree/internal/cluster"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// reserveAddr picks a concrete loopback address by binding an
// ephemeral port and releasing it; cluster members need their address
// known before the server starts because the map names it.
func reserveAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startMember starts a durable cluster member on addr whose initial
// map names initialOwner for every range.
func startMember(t *testing.T, addr, initialOwner string, shards int) (*shard.Router, *cluster.Node) {
	t.Helper()
	r, err := shard.NewRouter(shards, shard.Options{MinPairs: 4, Durable: true, Dir: t.TempDir(), WALNoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	node, err := cluster.NewNode(cluster.NodeConfig{
		Self: addr, Shards: shards, InitialOwner: initialOwner,
		Dir: r.Engine(0).WALDir(), Logf: func(string, ...any) {},
	})
	if err != nil {
		r.Close()
		t.Fatal(err)
	}
	s := server.New(r, server.Config{Addr: addr, Logf: func(string, ...any) {}, Cluster: node})
	if err := s.Start(); err != nil {
		r.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); r.Close() })
	return r, node
}

// TestClusterStaleMapConverges is the satellite contract for the
// cluster-aware client: a client holding a stale map converges after a
// single redirect round-trip — the StatusWrongShard refusal carries
// the authoritative map, the client installs it and the retried
// operation lands on the new owner. Subsequent operations on the moved
// range cause no further redirects.
func TestClusterStaleMapConverges(t *testing.T) {
	const shards = 4
	addrA, addrB := reserveAddr(t), reserveAddr(t)
	rA, nodeA := startMember(t, addrA, addrA, shards)
	startMember(t, addrB, addrA, shards)

	cl, err := client.DialCluster(addrA, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A key in the last range, seeded while A still owns everything.
	lo, _ := rA.ShardSpan(shards - 1)
	key := client.Key(lo) + 42
	ctx := context.Background()
	if err := cl.Insert(ctx, key, 7); err != nil {
		t.Fatal(err)
	}
	v0 := cl.Stats().MapVersion

	// Move the key's range to B behind the client's back: the held map
	// is now stale.
	if err := nodeA.Migrate(rA, shards-1, addrB); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	v, err := cl.Search(ctx, key)
	if err != nil {
		t.Fatalf("search through stale map: %v", err)
	}
	if v != 7 {
		t.Fatalf("search = %d, want 7", v)
	}

	st := cl.Stats()
	if st.Redirects != 1 {
		t.Fatalf("redirects = %d, want exactly 1 (one round-trip to converge)", st.Redirects)
	}
	if st.MapInstalls < 1 {
		t.Fatalf("map installs = %d, want >= 1", st.MapInstalls)
	}
	if st.MapVersion <= v0 {
		t.Fatalf("map version %d did not advance past %d", st.MapVersion, v0)
	}
	if owner := cl.Map().Owners[shards-1]; owner != addrB {
		t.Fatalf("range %d owner = %q, want %q", shards-1, owner, addrB)
	}

	// Converged: a write to the moved range routes straight to B.
	if _, _, err := cl.Upsert(ctx, key, 8); err != nil {
		t.Fatal(err)
	}
	if after := cl.Stats(); after.Redirects != st.Redirects {
		t.Fatalf("redirects grew %d -> %d after convergence", st.Redirects, after.Redirects)
	}
}
