// Package client is the Go client for a blinktree network server
// (internal/server, cmd/blinkserver). It speaks the length-prefixed
// binary protocol specified in docs/protocol.md and mirrors the
// blinktree.Index surface over the wire: point operations, the atomic
// conditional writes, bounded scan pages, shard-parallel batches,
// Len, Stats and Checkpoint.
//
// The client is built for pipelining. A Client holds a small pool of
// connections (Options.Conns); each connection multiplexes any number
// of concurrent calls onto one wire stream — a writer goroutine
// gathers whatever calls are queued and writes them as one burst, a
// reader goroutine matches responses to calls by request id. So N
// goroutines calling Search/Upsert concurrently cost far fewer
// syscalls than N round trips, and the server coalesces the burst
// into a single shard-parallel batch (one WAL group commit per
// touched shard on a durable server). Throughput therefore scales
// with pipeline depth; see experiment E13.
//
// Semantics across the wire:
//
//   - Sentinel errors survive: a missing key is blinktree.ErrNotFound
//     via errors.Is, a duplicate insert blinktree.ErrDuplicate.
//   - Every call takes a context; cancellation abandons the call
//     (the response, if it arrives, is discarded) without disturbing
//     other calls on the connection.
//   - Idempotent reads (Search, Scan, Len, Stats, Ping) are retried
//     once on a fresh connection after a network failure
//     (Options.RetryReads). Mutations are never retried: a lost
//     response does not prove a lost write, and the conditional
//     surface (CompareAndSwap / GetOrInsert) is the right tool for
//     at-most-once semantics over an unreliable link.
//   - Requests pipelined concurrently may execute in any relative
//     order. A caller that needs op B to observe op A must wait for
//     A's response before issuing B (per-call ordering is preserved
//     by waiting, exactly like a local call).
//   - With Options.ReplicaAddr set, idempotent reads are served by a
//     read replica (falling back to the primary on transport
//     failure) while mutations always go to the primary. Replication
//     is asynchronous, so replica reads may lag acknowledged writes.
//     Promote turns a follower writable after its primary dies.
package client
