package client_test

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"blinktree/client"
	"blinktree/internal/server"
	"blinktree/internal/shard"
)

// Example walks the full client surface against an in-process server:
// point ops, conditional writes, a batch, and a paged scan.
func Example() {
	// Serve a 4-shard in-memory index on an ephemeral port.
	r, err := shard.NewRouter(4, shard.Options{})
	if err != nil {
		panic(err)
	}
	defer r.Close()
	srv := server.New(r, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Close()

	c, err := client.Dial(srv.Addr().String(), client.Options{})
	if err != nil {
		panic(err)
	}
	defer c.Close()
	ctx := context.Background()

	_ = c.Insert(ctx, 42, 420)
	v, _ := c.Search(ctx, 42)
	fmt.Println("search 42:", v)

	old, existed, _ := c.Upsert(ctx, 42, 421)
	fmt.Println("upsert 42:", old, existed)

	swapped, _ := c.CompareAndSwap(ctx, 42, 421, 1000)
	fmt.Println("cas 42:", swapped)

	if _, err := c.Search(ctx, 7); errors.Is(err, client.ErrNotFound) {
		fmt.Println("search 7: not found")
	}

	// One wire request, executed shard-parallel on the server.
	results, _ := c.Batch(ctx, []client.Op{
		{Kind: client.OpInsert, Key: 1, Value: 10},
		{Kind: client.OpInsert, Key: 2, Value: 20},
		{Kind: client.OpSearch, Key: 42},
	})
	fmt.Println("batch search 42:", results[2].Value)

	// Paged iteration over the whole keyspace.
	var pairs int
	_ = c.Range(ctx, 0, client.Key(^uint64(0)), 0, func(k client.Key, v client.Value) bool {
		pairs++
		return true
	})
	fmt.Println("pairs:", pairs)

	// Output:
	// search 42: 420
	// upsert 42: 420 true
	// cas 42: true
	// search 7: not found
	// batch search 42: 1000
	// pairs: 3
}

// Example_pipelining shows the property the client is built around:
// concurrent goroutines sharing one client are automatically batched
// into pipelined bursts, which the server coalesces into
// shard-parallel batches.
func Example_pipelining() {
	r, _ := shard.NewRouter(8, shard.Options{})
	defer r.Close()
	srv := server.New(r, server.Config{Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		panic(err)
	}
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String(), client.Options{Conns: 1})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 64; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := client.Key(uint64(w*50+i) * 0x9E3779B97F4A7C15)
				if _, _, err := c.Upsert(ctx, k, client.Value(i)); err != nil {
					panic(err)
				}
			}
		}(w)
	}
	wg.Wait()
	n, _ := c.Len(ctx)
	fmt.Println("stored:", n)
	// Output:
	// stored: 3200
}
