package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/base"
	"blinktree/internal/verify"
	"blinktree/internal/wire"
)

// Key is the 64-bit search key (identical to blinktree.Key).
type Key = base.Key

// Value is the 64-bit payload (identical to blinktree.Value).
type Value = base.Value

// Sentinel errors, shared with the blinktree package so errors.Is
// works the same against a remote index as against a local one.
var (
	ErrNotFound  = base.ErrNotFound
	ErrDuplicate = base.ErrDuplicate
	ErrClosed    = base.ErrClosed
)

// ErrReadOnly reports a mutation sent to a read-only follower; writes
// must go to the primary (see Options.ReplicaAddr and Promote).
var ErrReadOnly = wire.ErrReadOnly

// ErrClientClosed is returned by calls made after Close.
var ErrClientClosed = errors.New("client: closed")

// ErrNoPinnedRoot is returned by VerifiedGet before any root has been
// pinned with PinRoot.
var ErrNoPinnedRoot = errors.New("client: no pinned root (call PinRoot first)")

// Proof verification errors, re-exported so callers can classify a
// VerifiedGet rejection without importing another package.
var (
	ErrBadProof     = verify.ErrBadProof
	ErrRootMismatch = verify.ErrRootMismatch
)

// Options tunes Dial. The zero value works.
type Options struct {
	// Conns is the connection pool size. More connections spread
	// pipelined load over more server-side poll loops; fewer coalesce
	// harder. Default 2.
	Conns int
	// DialTimeout bounds each dial (including the hello exchange).
	// Default 5s.
	DialTimeout time.Duration
	// RetryReads is how many times an idempotent read (Search, Scan,
	// Len, Stats, Ping) is retried on a fresh connection after a
	// network failure. Mutations are never retried — a lost response
	// does not prove a lost write. Default 1; negative disables.
	RetryReads int
	// ReadBuffer sizes each connection's buffered reader; WriteBuffer
	// sizes the writer goroutine's burst buffer (whole bursts go out
	// in a single Write). Default 64 KiB each.
	ReadBuffer, WriteBuffer int
	// ReplicaAddr, when non-empty, is a read replica (a follower, see
	// docs/protocol.md): idempotent reads — Search, Scan/Range, Len,
	// Stats, Ping — are served by it, falling back to the primary on a
	// network failure, mirroring the retry-on-reconnect rule.
	// Mutations always go to the primary. Replication is asynchronous:
	// replica reads may lag the primary (a Search can miss a write the
	// primary already acknowledged), which is the price of scaling
	// reads beyond one machine.
	ReplicaAddr string
}

func (o *Options) fill() {
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryReads == 0 {
		o.RetryReads = 1
	}
	if o.RetryReads < 0 {
		o.RetryReads = 0
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 64 << 10
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
}

// Client is a pooled, pipelining client for a blinkserver. All methods
// are safe for concurrent use by any number of goroutines; concurrent
// calls through the same connection are multiplexed onto one wire
// stream (each call is one pipelined request), which is what lets the
// server coalesce them into shard-parallel batches.
type Client struct {
	addr   string
	opt    Options
	slots  []slot
	next   atomic.Uint64
	closed atomic.Bool
	// replica is the read-replica pool (nil without ReplicaAddr). Its
	// connections dial lazily, so a down replica costs nothing until a
	// read tries it — and that read falls back to the primary.
	replica *Client
	// replicaDownUntil (unix nanos) is the negative cache after a
	// replica transport failure: reads skip straight to the primary
	// until it passes, so a dead replica costs one dial timeout per
	// cooldown window instead of one per read.
	replicaDownUntil atomic.Int64
	// pinnedRoot is the trusted state root VerifiedGet checks proofs
	// against (nil until PinRoot).
	pinnedRoot atomic.Pointer[[32]byte]
}

// replicaCooldown is how long reads avoid the replica after it fails.
const replicaCooldown = time.Second

// slot holds one pooled connection, redialed lazily after failures.
type slot struct {
	mu sync.Mutex
	cn *conn
}

// Dial connects to a blinkserver at addr (host:port). The first
// connection is established eagerly so configuration errors surface
// here; the rest of the pool dials on demand.
func Dial(addr string, opt Options) (*Client, error) {
	opt.fill()
	c := &Client{addr: addr, opt: opt, slots: make([]slot, opt.Conns)}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.slots[0].cn = cn
	if opt.ReplicaAddr != "" {
		ropt := opt
		ropt.ReplicaAddr = ""
		// Lazy pool: a replica that is down when Dial runs must not
		// fail the primary client, so no eager connection here.
		c.replica = &Client{addr: opt.ReplicaAddr, opt: ropt, slots: make([]slot, ropt.Conns)}
	}
	return c, nil
}

// Close tears the pool down. In-flight calls fail with ErrClientClosed.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		if s.cn != nil {
			s.cn.fail(ErrClientClosed)
			s.cn = nil
		}
		s.mu.Unlock()
	}
	if c.replica != nil {
		c.replica.Close()
	}
	return nil
}

// --- public operation surface ---

// Ping round-trips an empty frame. Idempotent (retried on reconnect).
func (c *Client) Ping(ctx context.Context) error {
	_, _, err := c.doPoint(ctx, wire.OpPing, 0, 0, 0, true)
	return err
}

// Search returns the value stored under k, or ErrNotFound. Idempotent.
func (c *Client) Search(ctx context.Context, k Key) (Value, error) {
	v, _, err := c.doPoint(ctx, wire.OpSearch, uint64(k), 0, 0, true)
	return Value(v), err
}

// Insert stores v under k; ErrDuplicate if k is present.
func (c *Client) Insert(ctx context.Context, k Key, v Value) error {
	_, _, err := c.doPoint(ctx, wire.OpInsert, uint64(k), uint64(v), 0, false)
	return err
}

// Delete removes k, or returns ErrNotFound.
func (c *Client) Delete(ctx context.Context, k Key) error {
	_, _, err := c.doPoint(ctx, wire.OpDelete, uint64(k), 0, 0, false)
	return err
}

// Upsert stores v under k unconditionally, returning the previous
// value and whether one existed.
func (c *Client) Upsert(ctx context.Context, k Key, v Value) (old Value, existed bool, err error) {
	prev, existed, err := c.doPoint(ctx, wire.OpUpsert, uint64(k), uint64(v), 0, false)
	return Value(prev), existed, err
}

// GetOrInsert returns the value under k, inserting v first when k is
// absent; loaded reports whether it was already present.
func (c *Client) GetOrInsert(ctx context.Context, k Key, v Value) (actual Value, loaded bool, err error) {
	got, loaded, err := c.doPoint(ctx, wire.OpGetOrInsert, uint64(k), uint64(v), 0, false)
	return Value(got), loaded, err
}

// CompareAndSwap replaces k's value with new only when it equals old.
// A missing key is ErrNotFound; a mismatch is (false, nil).
func (c *Client) CompareAndSwap(ctx context.Context, k Key, old, new Value) (bool, error) {
	_, swapped, err := c.doPoint(ctx, wire.OpCompareAndSwap, uint64(k), uint64(old), uint64(new), false)
	return swapped, err
}

// CompareAndDelete removes k only when its value equals old, with the
// same convention as CompareAndSwap.
func (c *Client) CompareAndDelete(ctx context.Context, k Key, old Value) (bool, error) {
	_, deleted, err := c.doPoint(ctx, wire.OpCompareAndDelete, uint64(k), uint64(old), 0, false)
	return deleted, err
}

// Pair is one key/value of a scan page.
type Pair struct {
	Key   Key
	Value Value
}

// Scan fetches one bounded page of lo ≤ key ≤ hi in ascending order.
// limit 0 asks for the server default; the server caps it at
// wire.MaxScanLimit. more reports that the page filled before hi —
// resume with lo = last key + 1. Idempotent.
func (c *Client) Scan(ctx context.Context, lo, hi Key, limit int) (pairs []Pair, more bool, err error) {
	var b wire.Buf
	b.U64(uint64(lo))
	b.U64(uint64(hi))
	b.U32(uint32(limit))
	pl, err := c.do(ctx, wire.OpScan, b.B, true)
	if err != nil {
		return nil, false, err
	}
	d := wire.Dec{B: pl}
	more = d.U8() != 0
	n := int(d.U32())
	if n > (len(pl)-5)/16 {
		// Never trust a wire-supplied count beyond what the payload
		// can actually hold — a corrupt response must not drive a
		// giant allocation.
		return nil, false, errors.New("client: malformed scan response")
	}
	pairs = make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, Pair{Key(d.U64()), Value(d.U64())})
	}
	if !d.Done() {
		return nil, false, errors.New("client: malformed scan response")
	}
	return pairs, more, nil
}

// Range calls fn for each pair with lo ≤ key ≤ hi in ascending order,
// fetching pages of pageSize (0 = server default) until done or fn
// returns false. Pages are independent requests: concurrent mutations
// between pages may or may not be observed, exactly like a local
// cursor.
func (c *Client) Range(ctx context.Context, lo, hi Key, pageSize int, fn func(Key, Value) bool) error {
	for {
		pairs, more, err := c.Scan(ctx, lo, hi, pageSize)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			if !fn(p.Key, p.Value) {
				return nil
			}
		}
		if !more || len(pairs) == 0 {
			return nil
		}
		last := pairs[len(pairs)-1].Key
		if last == Key(^uint64(0)) || last >= hi {
			return nil
		}
		lo = last + 1
	}
}

// OpKind selects what a batch slot does. The values are the wire op
// codes of the corresponding point operations.
type OpKind uint8

// Batchable operation kinds.
const (
	OpSearch           = OpKind(wire.OpSearch)
	OpInsert           = OpKind(wire.OpInsert)
	OpDelete           = OpKind(wire.OpDelete)
	OpUpsert           = OpKind(wire.OpUpsert)
	OpGetOrInsert      = OpKind(wire.OpGetOrInsert)
	OpCompareAndSwap   = OpKind(wire.OpCompareAndSwap)
	OpCompareAndDelete = OpKind(wire.OpCompareAndDelete)
)

// Op is one operation of a Batch call. Old is the expected value for
// the compare kinds; Value is ignored for searches and deletes.
type Op struct {
	Kind  OpKind
	Key   Key
	Value Value
	Old   Value
}

// Result is the outcome of one batched operation, positionally aligned
// with its Op: Value carries the searched/previous/actual value, OK
// the kind-specific boolean, Err the per-slot error.
type Result struct {
	Value Value
	OK    bool
	Err   error
}

// Batch executes ops as one wire request and one shard-parallel batch
// on the server, returning per-slot results. Errors are per slot: a
// failed op does not stop the batch. At most wire.MaxBatchOps slots.
func (c *Client) Batch(ctx context.Context, ops []Op) ([]Result, error) {
	if len(ops) > wire.MaxBatchOps {
		return nil, fmt.Errorf("client: batch of %d exceeds %d", len(ops), wire.MaxBatchOps)
	}
	var b wire.Buf
	b.U32(uint32(len(ops)))
	for _, op := range ops {
		b.U8(uint8(op.Kind))
		b.U64(uint64(op.Key))
		b.U64(uint64(op.Value))
		b.U64(uint64(op.Old))
	}
	pl, err := c.do(ctx, wire.OpBatch, b.B, false)
	if err != nil {
		return nil, err
	}
	if len(pl) != 10*len(ops) {
		return nil, errors.New("client: malformed batch response")
	}
	d := wire.Dec{B: pl}
	results := make([]Result, len(ops))
	for i := range results {
		status := d.U8()
		results[i].Value = Value(d.U64())
		results[i].OK = d.U8() != 0
		results[i].Err = wire.StatusError(status, "")
	}
	return results, nil
}

// Len returns the number of stored pairs. Idempotent.
func (c *Client) Len(ctx context.Context) (int, error) {
	pl, err := c.do(ctx, wire.OpLen, nil, true)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: pl}
	n := int(d.U64())
	return n, d.Err
}

// Checkpoint asks the server to write a durable snapshot and truncate
// its write-ahead log (a no-op on a volatile server).
func (c *Client) Checkpoint(ctx context.Context) error {
	_, err := c.do(ctx, wire.OpCheckpoint, nil, false)
	return err
}

// Promote asks a read-only follower to stop replicating and accept
// writes — the failover step after the primary dies. It reports
// whether the server was in fact a follower (false = it was already
// writable and nothing changed). Promote always targets the primary
// address of this client, so a failover client should be dialed
// against the follower's address.
func (c *Client) Promote(ctx context.Context) (bool, error) {
	pl, err := c.do(ctx, wire.OpPromote, nil, false)
	if err != nil {
		return false, err
	}
	d := wire.Dec{B: pl}
	was := d.U8() != 0
	return was, d.Err
}

// Stats is the index-level counter snapshot a server reports.
type Stats struct {
	Shards   int
	Len      uint64
	Height   uint64
	Searches uint64
	Inserts  uint64
	Deletes  uint64
	Upserts  uint64
	Updates  uint64
	Cas      uint64
	Scans    uint64
	Batches  uint64
	BatchOps uint64
}

// Stats fetches the server's cheap index counters. Idempotent.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	pl, err := c.do(ctx, wire.OpStats, nil, true)
	if err != nil {
		return Stats{}, err
	}
	d := wire.Dec{B: pl}
	n := int(d.U32())
	if n > (len(pl)-4)/8 {
		return Stats{}, errors.New("client: malformed stats response")
	}
	f := make([]uint64, n)
	for i := range f {
		f[i] = d.U64()
	}
	if d.Err != nil {
		return Stats{}, d.Err
	}
	get := func(i int) uint64 {
		if i < len(f) {
			return f[i]
		}
		return 0
	}
	return Stats{
		Shards: int(get(0)), Len: get(1), Height: get(2),
		Searches: get(3), Inserts: get(4), Deletes: get(5),
		Upserts: get(6), Updates: get(7), Cas: get(8),
		Scans: get(9), Batches: get(10), BatchOps: get(11),
	}, nil
}

// --- verified serving (protocol v3, server started with -verified) ---

// Root fetches the server's current Merkle state root. The root is a
// commitment to the entire key/value state: two servers with the same
// contents report the same root. Idempotent (and replica-first when a
// replica is configured — a replica's root lags the primary's until
// replication catches up).
func (c *Client) Root(ctx context.Context) ([32]byte, error) {
	var root [32]byte
	pl, err := c.do(ctx, wire.OpRoot, nil, true)
	if err != nil {
		return root, err
	}
	if len(pl) != len(root) {
		return root, errors.New("client: malformed root response")
	}
	copy(root[:], pl)
	return root, nil
}

// PinRoot pins the trusted state root that every later VerifiedGet
// checks its proof against. Pin a root obtained out of band, or from
// Root over a connection made while you trust the server. After any
// mutation the server's root moves on, and VerifiedGet fails with
// ErrRootMismatch until a fresh root is pinned — which is the point:
// against a pinned root the server cannot answer from different state
// without detection.
func (c *Client) PinRoot(root [32]byte) {
	r := root
	c.pinnedRoot.Store(&r)
}

// PinnedRoot returns the currently pinned root, if any.
func (c *Client) PinnedRoot() ([32]byte, bool) {
	if p := c.pinnedRoot.Load(); p != nil {
		return *p, true
	}
	return [32]byte{}, false
}

// Prove fetches the server's inclusion/exclusion proof for k without
// checking it against any root. Most callers want VerifiedGet; Prove
// is for tooling that inspects or stores proofs. Idempotent.
func (c *Client) Prove(ctx context.Context, k Key) (*verify.Proof, error) {
	var b wire.Buf
	b.U64(uint64(k))
	pl, err := c.do(ctx, wire.OpProve, b.B, true)
	if err != nil {
		return nil, err
	}
	return verify.DecodeProof(pl)
}

// VerifiedGet looks up k and cryptographically verifies the answer
// against the root pinned with PinRoot: the server returns a Merkle
// proof, and the value (or its absence — absence is proven too) is
// accepted only if the proof folds up to exactly the pinned root.
// Returns the value and whether k is present; ErrRootMismatch if the
// proof is well-formed but commits to different state than the pinned
// root, ErrBadProof if it is malformed or self-inconsistent.
func (c *Client) VerifiedGet(ctx context.Context, k Key) (Value, bool, error) {
	p := c.pinnedRoot.Load()
	if p == nil {
		return 0, false, ErrNoPinnedRoot
	}
	proof, err := c.Prove(ctx, k)
	if err != nil {
		return 0, false, err
	}
	v, present, err := proof.Verify(uint64(k), *p)
	if err != nil {
		return 0, false, err
	}
	return Value(v), present, nil
}

// --- transport ---

// do runs one round trip: pick a pooled connection (redialing a dead
// slot), send the request, wait for the id-matched response. On a
// network failure, idempotent requests are retried Options.RetryReads
// times on a fresh connection; mutations surface the failure.
//
// With a configured replica, idempotent requests route there first and
// fall back to the primary only on a transport failure — a server-
// reported status from the replica (including NotFound) is a valid,
// possibly stale, answer and is returned as-is.
func (c *Client) do(ctx context.Context, op uint8, payload []byte, idempotent bool) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if idempotent && c.replica != nil && time.Now().UnixNano() > c.replicaDownUntil.Load() {
		pl, err := c.replica.do(ctx, op, payload, true)
		var ne *netError
		if err == nil || !errors.As(err, &ne) {
			return pl, err
		}
		// Replica unreachable: remember that for a cooldown and serve
		// from the primary.
		c.replicaDownUntil.Store(time.Now().Add(replicaCooldown).UnixNano())
	}
	attempts := 1
	if idempotent {
		attempts += c.opt.RetryReads
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		cn, err := c.conn()
		if err != nil {
			lastErr = err
			continue
		}
		pl, err := cn.roundtrip(ctx, op, payload)
		if err == nil {
			return pl, nil
		}
		var ne *netError
		if !errors.As(err, &ne) {
			return nil, err // server status or ctx error: no retry
		}
		lastErr = ne.err
	}
	// Wrap in netError so callers (the replica fallback above) can
	// still classify the exhausted retries as a transport failure.
	return nil, fmt.Errorf("client: %s failed after %d attempt(s): %w", opName(op), attempts, &netError{lastErr})
}

// doPoint is do for the fixed-shape point operations (ping, search,
// insert, delete, upsert, get-or-insert, compare-and-swap,
// compare-and-delete): the request is encoded into the pooled call's
// own storage and the response decoded from it before the call is
// pooled again, so the steady-state round trip allocates nothing. The
// x/y/z argument meaning is per-op (see encodePoint); val/ok carry the
// decoded response fields the op defines (see decodePoint).
func (c *Client) doPoint(ctx context.Context, op uint8, x, y, z uint64, idempotent bool) (val uint64, ok bool, err error) {
	if c.closed.Load() {
		return 0, false, ErrClientClosed
	}
	if idempotent && c.replica != nil && time.Now().UnixNano() > c.replicaDownUntil.Load() {
		val, ok, err := c.replica.doPoint(ctx, op, x, y, z, true)
		var ne *netError
		if err == nil || !errors.As(err, &ne) {
			return val, ok, err
		}
		// Replica unreachable: remember that for a cooldown and serve
		// from the primary.
		c.replicaDownUntil.Store(time.Now().Add(replicaCooldown).UnixNano())
	}
	cl := callPool.Get().(*call)
	n := encodePoint(cl, op, x, y, z)
	attempts := 1
	if idempotent {
		attempts += c.opt.RetryReads
	}
	// reuse tracks whether cl can go back to the pool when this call
	// returns. It latches false the first time an attempt leaves cl.req
	// possibly still referenced by a dead connection's goroutines (see
	// roundtripPoint); retries on a fresh connection only *read* cl.req,
	// which is safe, but pooling — and the rewrite by cl's next owner —
	// is not. A tainted cl is left to the garbage collector.
	reuse := true
	var lastErr error
	for a := 0; a < attempts; a++ {
		cn, err := c.conn()
		if err != nil {
			lastErr = err
			continue
		}
		val, ok, safe, err := cn.roundtripPoint(ctx, op, cl, n)
		reuse = reuse && safe
		if err == nil {
			if reuse {
				callPool.Put(cl)
			}
			return val, ok, nil
		}
		var ne *netError
		if !errors.As(err, &ne) {
			if reuse {
				callPool.Put(cl)
			}
			return 0, false, err // server status or ctx error: no retry
		}
		lastErr = ne.err
	}
	if reuse {
		callPool.Put(cl)
	}
	return 0, false, fmt.Errorf("client: %s failed after %d attempt(s): %w", opName(op), attempts, &netError{lastErr})
}

// encodePoint writes op's request payload (per docs/protocol.md) into
// cl.req and returns its length. Argument meaning per op: x is the key
// (unused by ping); y is the value for insert/upsert/get-or-insert and
// the expected old value for the compare ops; z is compare-and-swap's
// new value.
func encodePoint(cl *call, op uint8, x, y, z uint64) int {
	le := binary.LittleEndian
	switch op {
	case wire.OpPing:
		return 0
	case wire.OpSearch, wire.OpDelete:
		le.PutUint64(cl.req[0:8], x)
		return 8
	case wire.OpCompareAndSwap:
		le.PutUint64(cl.req[0:8], x)
		le.PutUint64(cl.req[8:16], y)
		le.PutUint64(cl.req[16:24], z)
		return 24
	default: // insert, upsert, get-or-insert, compare-and-delete
		le.PutUint64(cl.req[0:8], x)
		le.PutUint64(cl.req[8:16], y)
		return 16
	}
}

// errMalformedPoint reports a point response whose payload length does
// not match its op's fixed shape.
var errMalformedPoint = errors.New("client: malformed point response")

// decodePoint decodes op's fixed-shape response payload: val is the
// searched/previous/actual value, ok the existed/loaded/swapped/
// deleted flag.
func decodePoint(op uint8, pl []byte) (val uint64, ok bool, err error) {
	switch op {
	case wire.OpSearch:
		if len(pl) != 8 {
			return 0, false, errMalformedPoint
		}
		return binary.LittleEndian.Uint64(pl), false, nil
	case wire.OpUpsert, wire.OpGetOrInsert:
		if len(pl) != 9 {
			return 0, false, errMalformedPoint
		}
		return binary.LittleEndian.Uint64(pl), pl[8] != 0, nil
	case wire.OpCompareAndSwap, wire.OpCompareAndDelete:
		if len(pl) != 1 {
			return 0, false, errMalformedPoint
		}
		return 0, pl[0] != 0, nil
	default: // ping, insert, delete: empty response
		if len(pl) != 0 {
			return 0, false, errMalformedPoint
		}
		return 0, false, nil
	}
}

// conn returns a live pooled connection, round-robin, dialing if the
// slot is empty or its connection died.
func (c *Client) conn() (*conn, error) {
	s := &c.slots[c.next.Add(1)%uint64(len(c.slots))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.closed.Load() {
		return nil, ErrClientClosed
	}
	if s.cn != nil && !s.cn.isDead() {
		return s.cn, nil
	}
	cn, err := c.dial()
	if err != nil {
		return nil, err
	}
	s.cn = cn
	return cn, nil
}

// dial establishes one connection: TCP connect, hello exchange, then
// the writer and reader goroutines.
func (c *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.opt.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	nc.SetDeadline(time.Now().Add(c.opt.DialTimeout))
	if err := wire.WriteHello(nc); err != nil {
		nc.Close()
		return nil, err
	}
	br := bufio.NewReaderSize(nc, c.opt.ReadBuffer)
	if _, err := wire.ReadHello(br); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	nc.SetDeadline(time.Time{})
	cn := &conn{
		nc:      nc,
		br:      br,
		wbufCap: c.opt.WriteBuffer,
		wake:    make(chan struct{}, 1),
		dead:    make(chan struct{}),
		pending: make(map[uint64]*call),
	}
	go cn.writeLoop()
	go cn.readLoop()
	return cn, nil
}

// netError wraps transport failures so do can distinguish them from
// server-reported statuses.
type netError struct{ err error }

func (e *netError) Error() string { return e.err.Error() }
func (e *netError) Unwrap() error { return e.err }

// wreq is one frame queued for the writer goroutine.
type wreq struct {
	id      uint64
	op      uint8
	payload []byte
}

// call is one in-flight request. Calls are pooled and carry their own
// request and response storage, so a steady-state point operation
// allocates nothing: the request is encoded into req (24 bytes holds
// the largest point payload, compare-and-swap), the reader copies any
// response that fits into resp (the largest point response is 9
// bytes), and the caller decodes from resp before returning the call
// to the pool. Larger responses arrive in payload, freshly allocated
// by the reader.
//
// Lifetime rule for req: on the success path the writer goroutine
// reads it exactly once, before the response can possibly arrive (the
// server answers only what it received), so decoding-then-Put after
// done fires is safe. Two completions break that ordering and must NOT
// pool the call (it is left to the garbage collector instead):
//   - a call abandoned on context cancellation, whose frame may still
//     sit unwritten in the queue;
//   - a completion delivered by fail(), which fires done without
//     waiting for the writer — the writer may still hold a swapped-out
//     burst referencing req, and would race with the next pool owner's
//     encodePoint.
type call struct {
	done    chan struct{}
	payload []byte // large response payload (owned by this call)
	err     error  // transport-level failure
	status  uint8
	respLen uint8    // bytes of resp in use when payload is nil
	resp    [16]byte // small response storage (point ops land here)
	req     [24]byte // request payload storage for point ops
}

// respSlice returns the response payload without copying; valid only
// until the call is pooled.
func (cl *call) respSlice() []byte {
	if cl.payload != nil {
		return cl.payload
	}
	return cl.resp[:cl.respLen]
}

// ownedResp returns the response payload as a slice safe to hold after
// the call is pooled: large payloads are already owned, small ones are
// copied out.
func (cl *call) ownedResp() []byte {
	if cl.payload != nil {
		return cl.payload
	}
	if cl.respLen == 0 {
		return nil
	}
	return append([]byte(nil), cl.resp[:cl.respLen]...)
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

// conn is one pooled connection. Calls from any number of goroutines
// are pipelined: enqueue appends to a queue under one mutex (the same
// acquisition registers the pending call), the writer goroutine swaps
// the whole queue out and writes it as one burst with a single flush,
// and the reader goroutine dispatches responses by id.
type conn struct {
	nc      net.Conn
	br      *bufio.Reader
	wbufCap int // initial capacity of the writer's burst buffer
	ids     atomic.Uint64

	mu      sync.Mutex
	queue   []wreq
	pending map[uint64]*call
	failed  bool
	failErr error

	wake     chan struct{} // 1-buffered; nudges the writer
	dead     chan struct{}
	failOnce sync.Once
}

func (cn *conn) isDead() bool {
	select {
	case <-cn.dead:
		return true
	default:
		return false
	}
}

// fail poisons the connection: every pending and future call errors.
func (cn *conn) fail(err error) {
	cn.failOnce.Do(func() {
		cn.mu.Lock()
		cn.failed = true
		cn.failErr = err
		calls := cn.pending
		cn.pending = nil
		cn.queue = nil
		cn.mu.Unlock()
		close(cn.dead)
		cn.nc.Close()
		for _, cl := range calls {
			cl.err = &netError{err}
			cl.done <- struct{}{}
		}
	})
}

// enqueue registers the call and queues its frame in one lock
// acquisition, then nudges the writer.
func (cn *conn) enqueue(id uint64, op uint8, payload []byte, cl *call) error {
	cn.mu.Lock()
	if cn.failed {
		err := cn.failErr
		cn.mu.Unlock()
		return err
	}
	cn.pending[id] = cl
	cn.queue = append(cn.queue, wreq{id: id, op: op, payload: payload})
	cn.mu.Unlock()
	select {
	case cn.wake <- struct{}{}:
	default:
	}
	return nil
}

// takePending removes and returns the call for id (nil if cancelled
// or already delivered).
func (cn *conn) takePending(id uint64) *call {
	cn.mu.Lock()
	cl := cn.pending[id]
	delete(cn.pending, id)
	cn.mu.Unlock()
	return cl
}

// roundtrip sends one request (payload owned by the caller) and waits
// for its response, returning an owned response slice.
func (cn *conn) roundtrip(ctx context.Context, op uint8, payload []byte) ([]byte, error) {
	id := cn.ids.Add(1)
	cl := callPool.Get().(*call)
	cl.payload, cl.status, cl.err, cl.respLen = nil, 0, nil, 0
	if err := cn.enqueue(id, op, payload, cl); err != nil {
		callPool.Put(cl)
		return nil, &netError{err}
	}
	if ctx.Done() == nil {
		// No cancellation possible: skip the select machinery.
		<-cl.done
		return cl.finish()
	}
	select {
	case <-cl.done:
	case <-ctx.Done():
		if cn.takePending(id) != nil {
			// Abandoned before delivery: the reader can no longer see
			// this call, so it is ours to reuse (the queued frame
			// references the caller's payload, not the call); its
			// response, if it ever arrives, is dropped by the id
			// lookup missing.
			callPool.Put(cl)
			return nil, ctx.Err()
		}
		// The reader already took the call: the result is in flight.
		<-cl.done
	}
	return cl.finish()
}

// finish extracts a delivered call's outcome as an owned payload or
// error and returns the call to the pool.
func (cl *call) finish() ([]byte, error) {
	if err := cl.err; err != nil {
		callPool.Put(cl)
		return nil, err
	}
	if cl.status != wire.StatusOK {
		err := wire.StatusError(cl.status, string(cl.respSlice()))
		callPool.Put(cl)
		return nil, err
	}
	payload := cl.ownedResp()
	callPool.Put(cl)
	return payload, nil
}

// roundtripPoint sends one point request already encoded in cl.req
// (length n) and decodes the response in place. It never pools cl:
// success and failure alike leave that to the caller. reuse reports
// whether cl is safe to pool afterwards; it is false when the frame
// may still be referenced by this connection (see the call doc
// comment): a context cancellation that left the frame possibly still
// queued, or a fail()-delivered completion — fail fires done after
// closing the socket but without synchronizing with the writer
// goroutine, which may still hold a swapped-out burst that reads
// cl.req while it drains onto the dead socket.
func (cn *conn) roundtripPoint(ctx context.Context, op uint8, cl *call, n int) (val uint64, ok, reuse bool, err error) {
	id := cn.ids.Add(1)
	cl.payload, cl.status, cl.err, cl.respLen = nil, 0, nil, 0
	if err := cn.enqueue(id, op, cl.req[:n], cl); err != nil {
		// Refused before entering the queue: nothing references cl.
		return 0, false, true, &netError{err}
	}
	if ctx.Done() == nil {
		<-cl.done
	} else {
		select {
		case <-cl.done:
		case <-ctx.Done():
			if cn.takePending(id) != nil {
				return 0, false, false, ctx.Err()
			}
			<-cl.done
		}
	}
	if cl.err != nil {
		return 0, false, false, cl.err
	}
	if cl.status != wire.StatusOK {
		return 0, false, true, wire.StatusError(cl.status, string(cl.respSlice()))
	}
	val, ok, err = decodePoint(op, cl.respSlice())
	return val, ok, true, err
}

// wburstRetain bounds the writer burst buffer kept across bursts: a
// burst that ballooned past it (concurrent large batches) is dropped
// back to the configured size instead of pinning the high-water mark.
const wburstRetain = 256 << 10

// writeLoop writes queued frames in bursts: swap the whole queue out
// under the lock, append every frame into one owned buffer, and put
// the whole burst on the wire with a single Write — one syscall per
// burst, no intermediate bufio layer. This is what turns N concurrent
// callers into one pipelined burst — which the server's coalescing
// loop then turns into one ApplyBatch.
func (cn *conn) writeLoop() {
	var spare []wreq
	out := make([]byte, 0, cn.wbufCap)
	for {
		select {
		case <-cn.wake:
		case <-cn.dead:
			return
		}
		for {
			cn.mu.Lock()
			batch := cn.queue
			if len(batch) == 0 {
				cn.mu.Unlock()
				break
			}
			cn.queue = spare[:0]
			cn.mu.Unlock()
			for i := range batch {
				var err error
				out, err = wire.AppendFrame(out, batch[i].id, batch[i].op, batch[i].payload)
				if err != nil {
					cn.fail(err)
					return
				}
				batch[i].payload = nil
			}
			spare = batch
		}
		if len(out) > 0 {
			if _, err := cn.nc.Write(out); err != nil {
				cn.fail(err)
				return
			}
			if cap(out) > wburstRetain {
				out = make([]byte, 0, cn.wbufCap)
			} else {
				out = out[:0]
			}
		}
	}
}

// readLoop dispatches responses to their pending calls by id. The
// scratch buffer is sized so every point response (≤ 9 bytes payload)
// is read into it and copied to the call's own resp array — no
// allocation; anything larger misses the scratch, so ReadFrame
// freshly allocates it and the buffer is handed to the waiter
// outright, owned.
func (cn *conn) readLoop() {
	var scratch [16]byte
	for {
		id, status, payload, err := wire.ReadFrame(cn.br, scratch[:0])
		if err != nil {
			cn.fail(err)
			return
		}
		cl := cn.takePending(id)
		if cl == nil {
			continue // cancelled call; drop its response
		}
		if len(payload) <= len(cl.resp) {
			cl.respLen = uint8(copy(cl.resp[:], payload))
			cl.payload = nil
		} else {
			cl.payload = payload
		}
		cl.status = status
		cl.done <- struct{}{}
	}
}

// opName names an op code for error messages.
func opName(op uint8) string {
	switch op {
	case wire.OpPing:
		return "ping"
	case wire.OpSearch:
		return "search"
	case wire.OpInsert:
		return "insert"
	case wire.OpDelete:
		return "delete"
	case wire.OpUpsert:
		return "upsert"
	case wire.OpGetOrInsert:
		return "get-or-insert"
	case wire.OpCompareAndSwap:
		return "compare-and-swap"
	case wire.OpCompareAndDelete:
		return "compare-and-delete"
	case wire.OpScan:
		return "scan"
	case wire.OpBatch:
		return "batch"
	case wire.OpLen:
		return "len"
	case wire.OpCheckpoint:
		return "checkpoint"
	case wire.OpStats:
		return "stats"
	case wire.OpPromote:
		return "promote"
	case wire.OpMigrate:
		return "migrate"
	case wire.OpClusterMap:
		return "cluster-map"
	case wire.OpRoot:
		return "root"
	case wire.OpProve:
		return "prove"
	default:
		return fmt.Sprintf("op%d", op)
	}
}
