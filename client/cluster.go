package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"blinktree/internal/wire"
)

// Cluster is a cluster-aware client: it holds a versioned range-
// ownership map (wire.ClusterMap), routes every operation to the
// member owning the key's range, and converges on the truth by
// itself — a StatusWrongShard refusal carries the refusing server's
// map, which the client installs (newer versions win) before
// retrying. Because servers refuse a wrong-shard op before touching
// any state, those retries are safe even for mutations.
//
// During the brief write fence of a live migration the map bounces:
// the source redirects to the pending target, the target refuses
// until the handoff commits. The client rides that out with a small
// backoff; convergence is bounded by the fence duration.
//
// All methods are safe for concurrent use.
type Cluster struct {
	opt    Options
	mu     sync.RWMutex
	cmap   *wire.ClusterMap // current map; treated as immutable
	pool   map[string]*Client
	closed atomic.Bool

	redirects atomic.Uint64 // StatusWrongShard responses seen
	installs  atomic.Uint64 // maps accepted (version >= held)
	retries   atomic.Uint64 // operation retry rounds
}

// clusterAttempts bounds the route-redirect-retry loop of one
// operation; with clusterBackoff it spans a couple of seconds, far
// beyond any healthy fence window.
const clusterAttempts = 24

// clusterBackoff is the pause before retry round `attempt` (≥ 1):
// exponential from 1ms, capped at 100ms.
func clusterBackoff(attempt int) time.Duration {
	if attempt > 7 {
		return 100 * time.Millisecond
	}
	return time.Millisecond << uint(attempt-1)
}

// DialCluster connects to any cluster member (the seed), fetches the
// cluster map from it, and routes from there. Options apply to every
// per-member connection pool (ReplicaAddr is ignored).
func DialCluster(seed string, opt Options) (*Cluster, error) {
	opt.fill()
	opt.ReplicaAddr = ""
	cl := &Cluster{opt: opt, pool: make(map[string]*Client)}
	c, err := Dial(seed, opt)
	if err != nil {
		return nil, err
	}
	cl.pool[seed] = c
	pl, err := c.do(context.Background(), wire.OpClusterMap, nil, true)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("client: cluster map from %s: %w", seed, err)
	}
	m, err := wire.DecodeClusterMap(pl)
	if err != nil {
		cl.Close()
		return nil, err
	}
	cl.cmap = m
	return cl, nil
}

// Close tears down every member pool.
func (cl *Cluster) Close() error {
	if !cl.closed.CompareAndSwap(false, true) {
		return nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.pool {
		c.Close()
	}
	return nil
}

// Map returns a copy of the cluster map the client currently routes by.
func (cl *Cluster) Map() *wire.ClusterMap { return cl.snapshot().Clone() }

func (cl *Cluster) snapshot() *wire.ClusterMap {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.cmap
}

// install decodes a map payload and adopts it unless it is older than
// the held one. Equal versions are adopted too: a redirect payload
// shares the source's version while overriding fenced ranges to their
// pending targets, and that override is the information we came for.
func (cl *Cluster) install(payload []byte) bool {
	m, err := wire.DecodeClusterMap(payload)
	if err != nil {
		return false
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.cmap != nil && (m.Version < cl.cmap.Version || len(m.Owners) != len(cl.cmap.Owners)) {
		return false
	}
	cl.cmap = m
	cl.installs.Add(1)
	return true
}

// member returns the pooled client for addr, dialing on first use.
func (cl *Cluster) member(addr string) (*Client, error) {
	cl.mu.RLock()
	c := cl.pool[addr]
	cl.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed.Load() {
		return nil, ErrClientClosed
	}
	if c := cl.pool[addr]; c != nil {
		return c, nil
	}
	c, err := Dial(addr, cl.opt)
	if err != nil {
		return nil, err
	}
	cl.pool[addr] = c
	return c, nil
}

// Refresh fetches the cluster map from every member it can reach and
// installs the newest. It fails only when no member answers.
func (cl *Cluster) Refresh(ctx context.Context) error {
	cl.mu.RLock()
	addrs := make(map[string]bool, len(cl.pool))
	for a := range cl.pool {
		addrs[a] = true
	}
	for _, a := range cl.cmap.Owners {
		addrs[a] = true
	}
	cl.mu.RUnlock()
	var lastErr error
	ok := false
	for a := range addrs {
		c, err := cl.member(a)
		if err != nil {
			lastErr = err
			continue
		}
		pl, err := c.do(ctx, wire.OpClusterMap, nil, true)
		if err != nil {
			lastErr = err
			continue
		}
		if cl.install(pl) {
			ok = true
		} else {
			ok = true // decoded but older: still a live answer
		}
	}
	if !ok {
		return fmt.Errorf("client: cluster map refresh: %w", lastErr)
	}
	return nil
}

func (cl *Cluster) tryRefresh(ctx context.Context) { _ = cl.Refresh(ctx) }

// sleepCtx pauses for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// doKey routes one point operation by key: pick the owner from the
// held map, send, and on StatusWrongShard install the carried map and
// retry. Transport failures retry only when the request is idempotent
// or provably unsent (a failed dial), because a lost response does not
// prove a lost write.
func (cl *Cluster) doKey(ctx context.Context, k Key, op uint8, payload []byte, idempotent bool) ([]byte, error) {
	if cl.closed.Load() {
		return nil, ErrClientClosed
	}
	var lastErr error
	for attempt := 0; attempt < clusterAttempts; attempt++ {
		if attempt > 0 {
			cl.retries.Add(1)
			if err := sleepCtx(ctx, clusterBackoff(attempt)); err != nil {
				return nil, err
			}
		}
		m := cl.snapshot()
		addr := m.Owners[m.Range(uint64(k))]
		c, err := cl.member(addr)
		if err != nil {
			// Nothing was sent: retrying is safe for any op. The owner
			// may be restarting, or the map stale — ask around.
			lastErr = err
			cl.tryRefresh(ctx)
			continue
		}
		pl, err := c.do(ctx, op, payload, idempotent)
		if err == nil {
			return pl, nil
		}
		var re *wire.RedirectError
		if errors.As(err, &re) {
			cl.redirects.Add(1)
			cl.install(re.Payload)
			lastErr = err
			continue
		}
		var ne *netError
		if errors.As(err, &ne) {
			lastErr = err
			if !idempotent {
				return nil, err
			}
			cl.tryRefresh(ctx)
			continue
		}
		return nil, err // a real answer (NotFound, Duplicate, ...)
	}
	return nil, fmt.Errorf("client: cluster %s gave up after %d attempts: %w",
		opName(op), clusterAttempts, lastErr)
}

// --- operation surface (mirrors Client) ---

// Ping round-trips against every member the map names.
func (cl *Cluster) Ping(ctx context.Context) error {
	for _, addr := range distinctOwners(cl.snapshot()) {
		c, err := cl.member(addr)
		if err != nil {
			return err
		}
		if err := c.Ping(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Search returns the value stored under k, or ErrNotFound.
func (cl *Cluster) Search(ctx context.Context, k Key) (Value, error) {
	var b wire.Buf
	b.U64(uint64(k))
	pl, err := cl.doKey(ctx, k, wire.OpSearch, b.B, true)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: pl}
	v := Value(d.U64())
	return v, d.Err
}

// Insert stores v under k; ErrDuplicate if k is present.
func (cl *Cluster) Insert(ctx context.Context, k Key, v Value) error {
	var b wire.Buf
	b.U64(uint64(k))
	b.U64(uint64(v))
	_, err := cl.doKey(ctx, k, wire.OpInsert, b.B, false)
	return err
}

// Delete removes k, or returns ErrNotFound.
func (cl *Cluster) Delete(ctx context.Context, k Key) error {
	var b wire.Buf
	b.U64(uint64(k))
	_, err := cl.doKey(ctx, k, wire.OpDelete, b.B, false)
	return err
}

// Upsert stores v under k unconditionally.
func (cl *Cluster) Upsert(ctx context.Context, k Key, v Value) (old Value, existed bool, err error) {
	var b wire.Buf
	b.U64(uint64(k))
	b.U64(uint64(v))
	pl, err := cl.doKey(ctx, k, wire.OpUpsert, b.B, false)
	if err != nil {
		return 0, false, err
	}
	d := wire.Dec{B: pl}
	old, existed = Value(d.U64()), d.U8() != 0
	return old, existed, d.Err
}

// GetOrInsert returns the value under k, inserting v when absent.
func (cl *Cluster) GetOrInsert(ctx context.Context, k Key, v Value) (actual Value, loaded bool, err error) {
	var b wire.Buf
	b.U64(uint64(k))
	b.U64(uint64(v))
	pl, err := cl.doKey(ctx, k, wire.OpGetOrInsert, b.B, false)
	if err != nil {
		return 0, false, err
	}
	d := wire.Dec{B: pl}
	actual, loaded = Value(d.U64()), d.U8() != 0
	return actual, loaded, d.Err
}

// CompareAndSwap replaces k's value with new only when it equals old.
func (cl *Cluster) CompareAndSwap(ctx context.Context, k Key, old, new Value) (bool, error) {
	var b wire.Buf
	b.U64(uint64(k))
	b.U64(uint64(old))
	b.U64(uint64(new))
	pl, err := cl.doKey(ctx, k, wire.OpCompareAndSwap, b.B, false)
	if err != nil {
		return false, err
	}
	d := wire.Dec{B: pl}
	swapped := d.U8() != 0
	return swapped, d.Err
}

// CompareAndDelete removes k only when its value equals old.
func (cl *Cluster) CompareAndDelete(ctx context.Context, k Key, old Value) (bool, error) {
	var b wire.Buf
	b.U64(uint64(k))
	b.U64(uint64(old))
	pl, err := cl.doKey(ctx, k, wire.OpCompareAndDelete, b.B, false)
	if err != nil {
		return false, err
	}
	d := wire.Dec{B: pl}
	deleted := d.U8() != 0
	return deleted, d.Err
}

// Scan fetches one page of lo ≤ key ≤ hi from the member owning lo's
// range. The server clamps the window at its range boundary and
// reports more=true for the clamp, so a page can be shorter than the
// keyspace ahead — Range knows how to resume across ranges.
func (cl *Cluster) Scan(ctx context.Context, lo, hi Key, limit int) (pairs []Pair, more bool, err error) {
	var b wire.Buf
	b.U64(uint64(lo))
	b.U64(uint64(hi))
	b.U32(uint32(limit))
	pl, err := cl.doKey(ctx, lo, wire.OpScan, b.B, true)
	if err != nil {
		return nil, false, err
	}
	d := wire.Dec{B: pl}
	more = d.U8() != 0
	n := int(d.U32())
	if n > (len(pl)-5)/16 {
		return nil, false, errors.New("client: malformed scan response")
	}
	pairs = make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, Pair{Key(d.U64()), Value(d.U64())})
	}
	if !d.Done() {
		return nil, false, errors.New("client: malformed scan response")
	}
	return pairs, more, nil
}

// Range calls fn for each pair with lo ≤ key ≤ hi ascending, fetching
// pages range by range across the cluster. Pages are independent
// requests; concurrent mutations between pages may or may not be
// observed. Ranges migrating mid-iteration are retried transparently
// like any other operation.
func (cl *Cluster) Range(ctx context.Context, lo, hi Key, pageSize int, fn func(Key, Value) bool) error {
	maxKey := Key(^uint64(0))
	for {
		pairs, more, err := cl.Scan(ctx, lo, hi, pageSize)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			if !fn(p.Key, p.Value) {
				return nil
			}
		}
		if !more {
			return nil // the unclamped window completed
		}
		if len(pairs) > 0 {
			last := pairs[len(pairs)-1].Key
			if last >= hi || last == maxKey {
				return nil
			}
			lo = last + 1
			continue
		}
		// A clamped-but-empty page: step past lo's range.
		m := cl.snapshot()
		end := rangeEnd(len(m.Owners), m.Range(uint64(lo)))
		if end == ^uint64(0) || Key(end) >= hi {
			return nil
		}
		lo = Key(end + 1)
	}
}

// rangeEnd returns the highest key of range i in an n-range partition.
func rangeEnd(n, i int) uint64 {
	if n <= 1 || i >= n-1 {
		return ^uint64(0)
	}
	stride := ^uint64(0)/uint64(n) + 1
	return uint64(i+1)*stride - 1
}

// Batch splits ops by owning member, runs the per-member batches, and
// merges results positionally. Slots refused with StatusWrongShard are
// retried after a map refresh (the batch encoding carries no redirect
// payload) — safe because refusal precedes any state change. Slots
// that fail in transport keep a transport error; they are not retried.
func (cl *Cluster) Batch(ctx context.Context, ops []Op) ([]Result, error) {
	if len(ops) > wire.MaxBatchOps {
		return nil, fmt.Errorf("client: batch of %d exceeds %d", len(ops), wire.MaxBatchOps)
	}
	if cl.closed.Load() {
		return nil, ErrClientClosed
	}
	results := make([]Result, len(ops))
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	for round := 0; len(idx) > 0 && round < clusterAttempts; round++ {
		if round > 0 {
			cl.retries.Add(1)
			if err := sleepCtx(ctx, clusterBackoff(round)); err != nil {
				return nil, err
			}
			cl.tryRefresh(ctx)
		}
		m := cl.snapshot()
		groups := make(map[string][]int)
		for _, i := range idx {
			addr := m.Owners[m.Range(uint64(ops[i].Key))]
			groups[addr] = append(groups[addr], i)
		}
		var next []int
		for addr, g := range groups {
			c, err := cl.member(addr)
			if err != nil {
				for _, i := range g {
					results[i] = Result{Err: err}
				}
				continue
			}
			sub := make([]Op, len(g))
			for j, i := range g {
				sub[j] = ops[i]
			}
			rs, err := c.Batch(ctx, sub)
			if err != nil {
				for _, i := range g {
					results[i] = Result{Err: err}
				}
				continue
			}
			for j, i := range g {
				results[i] = rs[j]
				if errors.Is(rs[j].Err, wire.ErrWrongShard) {
					cl.redirects.Add(1)
					next = append(next, i)
				}
			}
		}
		idx = next
	}
	return results, nil
}

// Len sums the pair counts of every member. Each member counts only
// the ranges it serves, so the sum is exact when the cluster is quiet
// and approximate while a fence briefly hides the migrating range.
func (cl *Cluster) Len(ctx context.Context) (int, error) {
	total := 0
	for _, addr := range distinctOwners(cl.snapshot()) {
		c, err := cl.member(addr)
		if err != nil {
			return 0, err
		}
		n, err := c.Len(ctx)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Checkpoint checkpoints every member.
func (cl *Cluster) Checkpoint(ctx context.Context) error {
	for _, addr := range distinctOwners(cl.snapshot()) {
		c, err := cl.member(addr)
		if err != nil {
			return err
		}
		if err := c.Checkpoint(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Migrate asks range sh's current owner to hand the range to target
// (an admin operation; it blocks until the handoff commits). On a
// server-side refusal the map is refreshed and the call retried once —
// the usual cure for asking a stale owner. Migrating to the current
// owner is a no-op.
func (cl *Cluster) Migrate(ctx context.Context, sh int, target string) error {
	m := cl.snapshot()
	if sh < 0 || sh >= len(m.Owners) {
		return fmt.Errorf("client: range %d out of [0,%d)", sh, len(m.Owners))
	}
	var b wire.Buf
	b.U8(0) // mode: admin trigger
	b.U32(uint32(sh))
	b.U16(uint16(len(target)))
	b.B = append(b.B, target...)
	// A migration blocks server-side until the handoff commits, which
	// can take a while — run it on a dedicated connection so pooled
	// traffic multiplexed behind it doesn't stall.
	try := func(addr string) error {
		admin, err := Dial(addr, Options{
			Conns:       1,
			DialTimeout: cl.opt.DialTimeout,
			RetryReads:  -1,
		})
		if err != nil {
			return err
		}
		defer admin.Close()
		_, err = admin.do(ctx, wire.OpMigrate, b.B, false)
		return err
	}
	err := try(m.Owners[sh])
	if err != nil {
		cl.tryRefresh(ctx)
		if m2 := cl.snapshot(); m2.Owners[sh] != m.Owners[sh] {
			err = try(m2.Owners[sh])
		}
		if err != nil {
			return err
		}
	}
	return cl.Refresh(ctx)
}

// ClusterStats is the client-local counter snapshot: how often routing
// was corrected and how hard operations had to try.
type ClusterStats struct {
	MapVersion  uint64 // version of the held cluster map
	Ranges      int    // ranges in the map
	Members     int    // member pools dialed so far
	Redirects   uint64 // StatusWrongShard refusals observed
	MapInstalls uint64 // maps adopted (from redirects and refreshes)
	Retries     uint64 // retry rounds across all operations
}

// Stats returns the client-local routing counters (no network I/O).
func (cl *Cluster) Stats() ClusterStats {
	cl.mu.RLock()
	m, members := cl.cmap, len(cl.pool)
	cl.mu.RUnlock()
	return ClusterStats{
		MapVersion:  m.Version,
		Ranges:      len(m.Owners),
		Members:     members,
		Redirects:   cl.redirects.Load(),
		MapInstalls: cl.installs.Load(),
		Retries:     cl.retries.Load(),
	}
}

// distinctOwners returns the unique member addresses of m, in map
// order of first appearance.
func distinctOwners(m *wire.ClusterMap) []string {
	seen := make(map[string]bool, 4)
	out := make([]string, 0, 4)
	for _, a := range m.Owners {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}
