package blinktree

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openDurable opens a front-end over dir: a single tree when shards ≤
// 1, else a sharded index, so every durability test runs against both.
func openDurable(t *testing.T, dir string, shards int) Index {
	t.Helper()
	opts := Options{Durable: true, Dir: dir}
	if shards > 1 {
		idx, err := OpenSharded(shards, opts)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}
	idx, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// crashIndex simulates a crash: at most partial bytes of any pending
// commit group reach disk and nothing pending is flushed. The index
// must be abandoned afterwards.
func crashIndex(idx Index, partial int) {
	switch v := idx.(type) {
	case *Tree:
		v.eng.CrashWAL(partial)
	case *Sharded:
		v.r.CrashWAL(partial)
	}
}

func stretchKey(i uint64) Key {
	// Spread keys over the full range so sharded runs hit every shard.
	return Key(i * (^uint64(0)/(1<<20) + 1))
}

func TestDurableRecoversAfterClose(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			idx := openDurable(t, dir, shards)
			const n = 500
			for i := uint64(0); i < n; i++ {
				if err := idx.Insert(stretchKey(i), Value(i)); err != nil {
					t.Fatal(err)
				}
			}
			// Exercise every logged mutation kind.
			if _, _, err := idx.Upsert(stretchKey(1), 1001); err != nil {
				t.Fatal(err)
			}
			if _, err := idx.Update(stretchKey(2), func(v Value) Value { return v * 10 }); err != nil {
				t.Fatal(err)
			}
			if ok, err := idx.CompareAndSwap(stretchKey(3), 3, 333); err != nil || !ok {
				t.Fatalf("cas: %v %v", ok, err)
			}
			if err := idx.Delete(stretchKey(4)); err != nil {
				t.Fatal(err)
			}
			if ok, err := idx.CompareAndDelete(stretchKey(5), 5); err != nil || !ok {
				t.Fatalf("cad: %v %v", ok, err)
			}
			if _, loaded, err := idx.GetOrInsert(stretchKey(n), 42); err != nil || loaded {
				t.Fatalf("getorinsert: %v %v", loaded, err)
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}

			re := openDurable(t, dir, shards)
			defer re.Close()
			if got := re.Len(); got != n-1 {
				t.Fatalf("recovered %d keys, want %d", got, n-1)
			}
			check := map[uint64]Value{1: 1001, 2: 20, 3: 333, 6: 6, n: 42}
			for i, want := range check {
				if got, err := re.Search(stretchKey(i)); err != nil || got != want {
					t.Fatalf("key %d: got %d, %v; want %d", i, got, err, want)
				}
			}
			for _, gone := range []uint64{4, 5} {
				if _, err := re.Search(stretchKey(gone)); !errors.Is(err, ErrNotFound) {
					t.Fatalf("deleted key %d came back", gone)
				}
			}
			if err := re.Check(); err != nil {
				t.Fatal(err)
			}
			st, err := re.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.WAL.Replayed == 0 {
				t.Fatal("recovery replayed nothing")
			}
		})
	}
}

func TestDurableCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(Options{Durable: true, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(Key(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(n); i < 2*n; i++ {
		if err := tr.Insert(Key(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := tr.Stats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// On disk: exactly one checkpoint, and no segment predating it.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts, segs := 0, 0
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "checkpoint-"):
			ckpts++
		case strings.HasPrefix(e.Name(), "wal-"):
			segs++
		}
	}
	if ckpts != 1 || segs == 0 {
		t.Fatalf("dir holds %d checkpoints, %d segments", ckpts, segs)
	}

	re := openDurable(t, dir, 1)
	defer re.Close()
	if got := re.Len(); got != 2*n {
		t.Fatalf("recovered %d keys, want %d", got, 2*n)
	}
	rst, _ := re.Stats()
	// Only the suffix since the checkpoint should have replayed.
	if rst.WAL.Replayed >= 2*n {
		t.Fatalf("replayed %d records; checkpoint did not truncate", rst.WAL.Replayed)
	}
	if err := re.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableCheckpointUnderLoad checkpoints repeatedly while writers
// run — the fuzzy-snapshot + idempotent-suffix path — then crashes and
// verifies recovery still matches the oracle.
func TestDurableCheckpointUnderLoad(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			idx := openDurable(t, dir, shards)
			const workers = 4
			const perWorker = 400
			var wg sync.WaitGroup
			acked := make([]map[uint64]Value, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				acked[w] = make(map[uint64]Value, perWorker)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						k := uint64(w*perWorker + i)
						if _, _, err := idx.Upsert(stretchKey(k), Value(k)); err != nil {
							t.Error(err)
							return
						}
						acked[w][k] = Value(k)
					}
				}(w)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 5; i++ {
					if err := idx.Checkpoint(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			wg.Wait()
			<-done
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}

			re := openDurable(t, dir, shards)
			defer re.Close()
			for w := 0; w < workers; w++ {
				for k, want := range acked[w] {
					if got, err := re.Search(stretchKey(k)); err != nil || got != want {
						t.Fatalf("key %d: got %d, %v; want %d", k, got, err, want)
					}
				}
			}
			if got := re.Len(); got != workers*perWorker {
				t.Fatalf("recovered %d keys, want %d", got, workers*perWorker)
			}
			if err := re.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDurableCheckpointWithCompressionChurn checkpoints while mass
// deletions keep background compression merging leaves — the regime
// where a fuzzy scan could race a leftward pair move and the
// checkpoint would silently drop an old acknowledged key (compression
// pauses during the scan precisely to prevent that). Every operation
// is acknowledged before Close, so recovery must be exact.
func TestDurableCheckpointWithCompressionChurn(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			opts := Options{Durable: true, Dir: dir, MinPairs: 4, CompressorWorkers: 2}
			var idx Index
			var err error
			if shards > 1 {
				idx, err = OpenSharded(shards, opts)
			} else {
				idx, err = Open(opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			const workers = 4
			const perWorker = 500
			for i := uint64(0); i < workers*perWorker; i++ {
				if err := idx.Insert(stretchKey(i), Value(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := idx.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// Delete 90% from every worker's slice while checkpoints run.
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						if i%10 == 0 {
							continue
						}
						if err := idx.Delete(stretchKey(uint64(w*perWorker + i))); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < 6; i++ {
					if err := idx.Checkpoint(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			wg.Wait()
			<-done
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}

			re := openDurable(t, dir, shards)
			defer re.Close()
			for w := 0; w < workers; w++ {
				for i := 0; i < perWorker; i++ {
					k := uint64(w*perWorker + i)
					v, err := re.Search(stretchKey(k))
					if i%10 == 0 {
						if err != nil || v != Value(k) {
							t.Fatalf("surviving key %d lost: %d, %v", k, v, err)
						}
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatalf("deleted key %d: %d, %v", k, v, err)
					}
				}
			}
			if got, want := re.Len(), workers*perWorker/10; got != want {
				t.Fatalf("recovered %d keys, want %d", got, want)
			}
			if err := re.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// durOracle tracks one worker's per-key state: the last acknowledged
// state, and — for the single operation in flight when the crash hit —
// the attempted state, either of which is a legal recovery outcome.
type durState struct {
	val     Value
	present bool
}

// TestDurableCrashRecovery is the crash-injection harness of the
// acceptance criteria: concurrent workers mutate disjoint key sets
// against a WAL-backed index, the committer is killed at a randomized
// torn-write offset, and recovery must yield a prefix-consistent
// state — every acknowledged operation present, nothing present that
// was never issued — for both front-ends.
func TestDurableCrashRecovery(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + shards)))
			for round := 0; round < 6; round++ {
				dir := t.TempDir()
				idx := openDurable(t, dir, shards)

				const workers = 4
				const keysPer = 64
				lastAcked := make([]map[uint64]durState, workers)
				attempt := make([]map[uint64]durState, workers)
				var acks atomic.Uint64
				var wg sync.WaitGroup
				stop := make(chan struct{})
				for w := 0; w < workers; w++ {
					lastAcked[w] = make(map[uint64]durState)
					attempt[w] = make(map[uint64]durState)
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						wrng := rand.New(rand.NewSource(int64(round*100 + w)))
						for seq := uint64(0); ; seq++ {
							select {
							case <-stop:
								return
							default:
							}
							i := uint64(wrng.Intn(keysPer))
							k := uint64(w*keysPer) + i
							cur := lastAcked[w][k]
							var next durState
							var err error
							switch {
							case cur.present && wrng.Intn(4) == 0:
								next = durState{}
								err = idx.Delete(stretchKey(k))
							case cur.present && wrng.Intn(3) == 0:
								next = durState{val: cur.val + 1, present: true}
								_, err = idx.Update(stretchKey(k), func(v Value) Value { return v + 1 })
							default:
								next = durState{val: Value(seq)<<8 | Value(w), present: true}
								_, _, err = idx.Upsert(stretchKey(k), next.val)
							}
							if err != nil {
								// The op's fate is unresolved: its record may or
								// may not have survived the torn write.
								attempt[w][k] = next
								return
							}
							lastAcked[w][k] = next
							acks.Add(1)
						}
					}(w)
				}
				// Let the workers build up real state — a few hundred
				// acknowledged ops — then kill the committer mid-group
				// at a random torn offset.
				target := uint64(200 + rng.Intn(600))
				for deadline := time.Now().Add(2 * time.Second); acks.Load() < target && time.Now().Before(deadline); {
					time.Sleep(time.Millisecond)
				}
				crashIndex(idx, rng.Intn(80))
				close(stop)
				wg.Wait()

				re := openDurable(t, dir, shards)
				for w := 0; w < workers; w++ {
					for k, want := range lastAcked[w] {
						got, err := re.Search(stretchKey(k))
						if err != nil && !errors.Is(err, ErrNotFound) {
							t.Fatal(err)
						}
						recovered := durState{val: got, present: err == nil}
						if recovered == want {
							continue
						}
						if alt, ok := attempt[w][k]; ok && recovered == alt {
							continue // the in-flight op's record survived the tear
						}
						t.Fatalf("round %d worker %d key %d: recovered %+v, acked %+v, attempt %+v",
							round, w, k, recovered, want, attempt[w][k])
					}
				}
				// No phantoms: every recovered pair must be explainable.
				for k, v := range re.All() {
					raw := uint64(k) / (^uint64(0)/(1<<20) + 1)
					w := int(raw) / keysPer
					if w < 0 || w >= workers {
						t.Fatalf("round %d: phantom key %d", round, raw)
					}
					st := durState{val: v, present: true}
					if st != lastAcked[w][raw] {
						if alt, ok := attempt[w][raw]; !ok || st != alt {
							t.Fatalf("round %d: key %d has unexplained value %d", round, raw, v)
						}
					}
				}
				if err := re.Check(); err != nil {
					t.Fatal(err)
				}
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// openDiskNative opens a durable, disk-native front-end over dir with
// a pool far smaller than the working set (8 frames of 256-byte pages
// per shard), so eviction write-back runs throughout every test using
// it.
func openDiskNative(t *testing.T, dir string, shards int) Index {
	t.Helper()
	opts := Options{
		Durable: true, Dir: dir, MinPairs: 2, PageSize: 256,
		DiskNative: true, CacheBytes: 8 * 256,
	}
	var idx Index
	var err error
	if shards > 1 {
		idx, err = OpenSharded(shards, opts)
	} else {
		idx, err = Open(opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// TestDiskNativeCrashRecovery reruns the crash-injection harness with
// the buffer pool in the loop: the page files absorb eviction
// write-backs right up to the torn-write kill, and recovery must still
// be exactly "checkpoint + log suffix" — the scratch page files must
// contribute nothing. A mid-run checkpoint makes the recovered state
// depend on a snapshot taken *through* the pool as well.
func TestDiskNativeCrashRecovery(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(23 + shards)))
			for round := 0; round < 4; round++ {
				dir := t.TempDir()
				idx := openDiskNative(t, dir, shards)

				const workers = 4
				const keysPer = 64
				lastAcked := make([]map[uint64]durState, workers)
				attempt := make([]map[uint64]durState, workers)
				var acks atomic.Uint64
				var wg sync.WaitGroup
				stop := make(chan struct{})
				for w := 0; w < workers; w++ {
					lastAcked[w] = make(map[uint64]durState)
					attempt[w] = make(map[uint64]durState)
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						wrng := rand.New(rand.NewSource(int64(round*100 + w)))
						for seq := uint64(0); ; seq++ {
							select {
							case <-stop:
								return
							default:
							}
							i := uint64(wrng.Intn(keysPer))
							k := uint64(w*keysPer) + i
							cur := lastAcked[w][k]
							var next durState
							var err error
							switch {
							case cur.present && wrng.Intn(4) == 0:
								next = durState{}
								err = idx.Delete(stretchKey(k))
							default:
								next = durState{val: Value(seq)<<8 | Value(w), present: true}
								_, _, err = idx.Upsert(stretchKey(k), next.val)
							}
							if err != nil {
								attempt[w][k] = next
								return
							}
							lastAcked[w][k] = next
							acks.Add(1)
						}
					}(w)
				}
				// One range scanner keeps read-ahead and long pin chains
				// in play while the crash lands.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						_ = idx.Range(0, Key(^uint64(0)), func(Key, Value) bool { return true })
					}
				}()
				target := uint64(200 + rng.Intn(400))
				for deadline := time.Now().Add(2 * time.Second); acks.Load() < target/2 && time.Now().Before(deadline); {
					time.Sleep(time.Millisecond)
				}
				// Fuzzy checkpoint through the pool mid-run.
				if err := idx.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				for deadline := time.Now().Add(2 * time.Second); acks.Load() < target && time.Now().Before(deadline); {
					time.Sleep(time.Millisecond)
				}
				crashIndex(idx, rng.Intn(80))
				close(stop)
				wg.Wait()

				re := openDiskNative(t, dir, shards)
				for w := 0; w < workers; w++ {
					for k, want := range lastAcked[w] {
						got, err := re.Search(stretchKey(k))
						if err != nil && !errors.Is(err, ErrNotFound) {
							t.Fatal(err)
						}
						recovered := durState{val: got, present: err == nil}
						if recovered == want {
							continue
						}
						if alt, ok := attempt[w][k]; ok && recovered == alt {
							continue
						}
						t.Fatalf("round %d worker %d key %d: recovered %+v, acked %+v, attempt %+v",
							round, w, k, recovered, want, attempt[w][k])
					}
				}
				for k, v := range re.All() {
					raw := uint64(k) / (^uint64(0)/(1<<20) + 1)
					w := int(raw) / keysPer
					if w < 0 || w >= workers {
						t.Fatalf("round %d: phantom key %d", round, raw)
					}
					st := durState{val: v, present: true}
					if st != lastAcked[w][raw] {
						if alt, ok := attempt[w][raw]; !ok || st != alt {
							t.Fatalf("round %d: key %d has unexplained value %d", round, raw, v)
						}
					}
				}
				if err := re.Check(); err != nil {
					t.Fatal(err)
				}
				st, err := re.Stats()
				if err != nil {
					t.Fatal(err)
				}
				if !st.Pooled {
					t.Fatal("disk-native index reports no pool")
				}
				if err := re.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDurableTornTailEveryByte closes a tree cleanly, then truncates
// the tail segment at every byte boundary and recovers: each recovery
// must yield exactly the insert prefix whose records survive whole.
func TestDurableTornTailEveryByte(t *testing.T) {
	src := t.TempDir()
	tr, err := Open(Options{Durable: true, Dir: src})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(Key(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	var segName string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "wal-") {
			if segName != "" {
				t.Fatal("expected a single segment")
			}
			segName = e.Name()
		}
	}
	data, err := os.ReadFile(filepath.Join(src, segName))
	if err != nil {
		t.Fatal(err)
	}
	const segHeader, recLen = 16, 25
	if len(data) != segHeader+n*recLen {
		t.Fatalf("segment %d bytes, want %d", len(data), segHeader+n*recLen)
	}
	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Options{Durable: true, Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := 0
		if cut >= segHeader {
			want = (cut - segHeader) / recLen
		}
		if got := re.Len(); got != want {
			t.Fatalf("cut %d: recovered %d keys, want %d", cut, got, want)
		}
		for i := 0; i < want; i++ {
			if v, err := re.Search(Key(i)); err != nil || v != Value(i) {
				t.Fatalf("cut %d: key %d: %d, %v", cut, i, v, err)
			}
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableApplyBatch drives the amortized batch commit path and
// recovers the result.
func TestDurableApplyBatch(t *testing.T) {
	dir := t.TempDir()
	idx, err := OpenSharded(4, Options{Durable: true, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	ops := make([]BatchOp, n)
	for i := range ops {
		ops[i] = BatchOp{Kind: BatchUpsert, Key: stretchKey(uint64(i)), Value: Value(i)}
	}
	for i, res := range idx.ApplyBatch(ops) {
		if res.Err != nil {
			t.Fatalf("op %d: %v", i, res.Err)
		}
	}
	// Mixed batch: deletes and CAS on top.
	ops2 := []BatchOp{
		{Kind: BatchDelete, Key: stretchKey(0)},
		{Kind: BatchCompareAndSwap, Key: stretchKey(1), Old: 1, Value: 100},
		{Kind: BatchSearch, Key: stretchKey(2)},
		{Kind: BatchGetOrInsert, Key: stretchKey(uint64(n)), Value: 7},
	}
	for i, res := range idx.ApplyBatch(ops2) {
		if res.Err != nil {
			t.Fatalf("op2 %d: %v", i, res.Err)
		}
	}
	st, _ := idx.Stats()
	if st.WAL.Syncs == 0 || st.WAL.Records < n {
		t.Fatalf("wal stats: %+v", st.WAL)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	re := openDurable(t, dir, 4)
	defer re.Close()
	if got := re.Len(); got != n {
		t.Fatalf("recovered %d keys, want %d", got, n)
	}
	if v, err := re.Search(stretchKey(1)); err != nil || v != 100 {
		t.Fatalf("cas'd key: %d, %v", v, err)
	}
	if _, err := re.Search(stretchKey(0)); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key came back")
	}
	if v, err := re.Search(stretchKey(uint64(n))); err != nil || v != 7 {
		t.Fatalf("getorinsert'd key: %d, %v", v, err)
	}
}

// TestDurableGroupCommitAmortizes asserts the group-commit acceptance
// criterion directly: under concurrent writers the mean group size
// must exceed 1 (many records per fsync).
func TestDurableGroupCommitAmortizes(t *testing.T) {
	dir := t.TempDir()
	tr, err := Open(Options{Durable: true, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	const workers, per = 16, 60
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := tr.Upsert(stretchKey(uint64(w*per+i)), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st, err := tr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL.Records != workers*per {
		t.Fatalf("records = %d, want %d", st.WAL.Records, workers*per)
	}
	if mean := st.WAL.MeanGroup(); mean <= 1.0 {
		t.Fatalf("mean group size %.2f — group commit is not grouping", mean)
	}
	t.Logf("group commit: %d records / %d syncs (mean %.1f, max %d)",
		st.WAL.Records, st.WAL.Syncs, st.WAL.MeanGroup(), st.WAL.MaxGroup)
}

// TestDurableRestore: restoring a snapshot into a durable index loads
// unlogged (one checkpoint at the end, not one fsync per pair) and the
// result survives reopening.
func TestDurableRestore(t *testing.T) {
	src := NewTree()
	const n = 2000
	for i := uint64(0); i < n; i++ {
		if err := src.Insert(stretchKey(i), Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf strings.Builder
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	src.Close()

	for _, shards := range []int{1, 4} {
		t.Run(map[int]string{1: "tree", 4: "sharded"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			idx := openDurable(t, dir, shards)
			if err := idx.Restore(strings.NewReader(buf.String())); err != nil {
				t.Fatal(err)
			}
			st, _ := idx.Stats()
			if st.WAL.Records >= n {
				t.Fatalf("restore logged %d per-pair records; want a checkpoint instead", st.WAL.Records)
			}
			if st.Checkpoints == 0 {
				t.Fatal("restore did not checkpoint")
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}
			re := openDurable(t, dir, shards)
			defer re.Close()
			if got := re.Len(); got != n {
				t.Fatalf("recovered %d pairs after restore, want %d", got, n)
			}
			if v, err := re.Search(stretchKey(n - 1)); err != nil || v != n-1 {
				t.Fatalf("spot check: %d, %v", v, err)
			}
		})
	}
}

// TestVolatileCheckpointNoop: Checkpoint on a volatile index is a
// harmless no-op.
func TestVolatileCheckpointNoop(t *testing.T) {
	tr := NewTree()
	defer tr.Close()
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	sh := NewSharded(3)
	defer sh.Close()
	if err := sh.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRequiresDir: Durable without Dir must fail loudly.
func TestDurableRequiresDir(t *testing.T) {
	if _, err := Open(Options{Durable: true}); err == nil {
		t.Fatal("Durable without Dir succeeded")
	}
	if _, err := OpenSharded(2, Options{Durable: true}); err == nil {
		t.Fatal("sharded Durable without Dir succeeded")
	}
}

// TestDurableLayoutGuard: reopening a durability directory with a
// different topology must error instead of silently hiding
// acknowledged data (the stride changes, so recovered keys would no
// longer route to the engines that hold them).
func TestDurableLayoutGuard(t *testing.T) {
	dir := t.TempDir()
	idx, err := OpenSharded(4, Options{Durable: true, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(8, Options{Durable: true, Dir: dir}); err == nil {
		t.Fatal("reopening shards=4 dir with shards=8 succeeded")
	}
	if _, err := Open(Options{Durable: true, Dir: dir}); err == nil {
		t.Fatal("reopening sharded dir as a single tree succeeded")
	}
	re, err := OpenSharded(4, Options{Durable: true, Dir: dir})
	if err != nil {
		t.Fatalf("matching reopen failed: %v", err)
	}
	defer re.Close()
	if v, err := re.Search(1); err != nil || v != 1 {
		t.Fatalf("recovered key: %d, %v", v, err)
	}

	// And the other direction: a single-tree dir refuses sharded reopen.
	tdir := t.TempDir()
	tr, err := Open(Options{Durable: true, Dir: tdir})
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if _, err := OpenSharded(2, Options{Durable: true, Dir: tdir}); err == nil {
		t.Fatal("reopening single-tree dir sharded succeeded")
	}
}
