package blinktree

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// spreadKeys returns m keys evenly spaced over the full uint64 range.
func spreadKeys(m int) []Key {
	ks := make([]Key, m)
	stride := ^uint64(0)/uint64(m) + 1
	for i := range ks {
		ks[i] = Key(uint64(i) * stride)
	}
	return ks
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded(4)
	defer s.Close()
	if s.Shards() != 4 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	keys := spreadKeys(100)
	for _, k := range keys {
		if err := s.Insert(k, Value(k)+7); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if v, err := s.Search(k); err != nil || v != Value(k)+7 {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, err)
		}
	}
	if _, err := s.Search(12345); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	if err := s.Insert(keys[3], 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup = %v", err)
	}
	if k, _, _ := s.Min(); k != keys[0] {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := s.Max(); k != keys[99] {
		t.Fatalf("Max = %d", k)
	}
	if s.Len() != 100 || s.Height() < 1 {
		t.Fatalf("Len=%d Height=%d", s.Len(), s.Height())
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// Both front-ends behave identically behind Index.
func TestIndexInterfaceParity(t *testing.T) {
	make_ := map[string]func() Index{
		"tree":    func() Index { return NewTree() },
		"sharded": func() Index { return NewSharded(4) },
	}
	keys := spreadKeys(60)
	for name, mk := range make_ {
		t.Run(name, func(t *testing.T) {
			idx := mk()
			defer idx.Close()
			for _, k := range keys {
				if err := idx.Insert(k, Value(k)); err != nil {
					t.Fatal(err)
				}
			}
			// Ordered iteration through the Iterator interface.
			it := idx.NewIterator(0)
			for i, want := range keys {
				k, _, ok := it.Next()
				if !ok || k != want {
					t.Fatalf("iterator[%d] = (%d, %v), want %d", i, k, ok, want)
				}
			}
			if _, _, ok := it.Next(); ok || it.Err() != nil {
				t.Fatalf("iterator end: ok=%v err=%v", ok, it.Err())
			}
			it.Seek(keys[30])
			if k, _, ok := it.Next(); !ok || k != keys[30] {
				t.Fatalf("after Seek: (%d, %v)", k, ok)
			}
			// Range window and early stop.
			var got []Key
			if err := idx.Range(keys[10], keys[20], func(k Key, _ Value) bool {
				got = append(got, k)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 11 || got[0] != keys[10] || got[10] != keys[20] {
				t.Fatalf("window = %v", got)
			}
			// Delete half, compact, validate.
			for i, k := range keys {
				if i%2 == 0 {
					if err := idx.Delete(k); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := idx.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := idx.Check(); err != nil {
				t.Fatal(err)
			}
			st, err := idx.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Tree.InsertLocks.MaxHeld > 1 {
				t.Fatalf("insert footprint %d", st.Tree.InsertLocks.MaxHeld)
			}
			if idx.Len() != 30 {
				t.Fatalf("Len = %d", idx.Len())
			}
		})
	}
}

// Snapshots move between front-ends and shard counts.
func TestSnapshotAcrossFrontEnds(t *testing.T) {
	src := NewSharded(4)
	defer src.Close()
	keys := spreadKeys(500)
	for _, k := range keys {
		if err := src.Insert(k, Value(k)*2); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	for name, dst := range map[string]Index{
		"tree":      NewTree(),
		"resharded": NewSharded(7),
	} {
		t.Run(name, func(t *testing.T) {
			defer dst.Close()
			if err := dst.Restore(bytes.NewReader(snap)); err != nil {
				t.Fatal(err)
			}
			if dst.Len() != len(keys) {
				t.Fatalf("restored Len = %d", dst.Len())
			}
			for _, k := range []Key{keys[0], keys[250], keys[499]} {
				if v, err := dst.Search(k); err != nil || v != Value(k)*2 {
					t.Fatalf("restored Search(%d) = (%d, %v)", k, v, err)
				}
			}
			if err := dst.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShardedBatchPublicAPI(t *testing.T) {
	s := NewSharded(3)
	defer s.Close()
	keys := spreadKeys(30)
	ops := make([]BatchOp, 0, len(keys)+2)
	for _, k := range keys {
		ops = append(ops, BatchOp{Kind: BatchInsert, Key: k, Value: Value(k)})
	}
	ops = append(ops,
		BatchOp{Kind: BatchSearch, Key: keys[5]},
		BatchOp{Kind: BatchDelete, Key: keys[6]},
	)
	res := s.ApplyBatch(ops)
	for i := 0; i < len(keys); i++ {
		if res[i].Err != nil {
			t.Fatalf("op %d: %v", i, res[i].Err)
		}
	}
	if res[len(keys)].Value != Value(keys[5]) || res[len(keys)].Err != nil {
		t.Fatalf("batch search = %+v", res[len(keys)])
	}
	if res[len(keys)+1].Err != nil {
		t.Fatalf("batch delete = %v", res[len(keys)+1].Err)
	}
	if s.Len() != 29 {
		t.Fatalf("Len = %d", s.Len())
	}
	// ShardStats exposes routing balance.
	var total uint64
	for _, st := range s.ShardStats() {
		total += st.BatchOps
	}
	if total != uint64(len(ops)) {
		t.Fatalf("batch ops recorded = %d, want %d", total, len(ops))
	}
}

func TestShardedConcurrentPublicAPI(t *testing.T) {
	s, err := OpenSharded(4, Options{MinPairs: 3, CompressorWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := spreadKeys(2048)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys[(i*7+w*131)%len(keys)]
				switch (i + w) % 3 {
				case 0:
					if err := s.Insert(k, Value(k)); err != nil && !errors.Is(err, ErrDuplicate) {
						t.Errorf("insert: %v", err)
						return
					}
				case 1:
					if err := s.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
						t.Errorf("delete: %v", err)
						return
					}
				default:
					if v, err := s.Search(k); err == nil && v != Value(k) {
						t.Errorf("foreign value %d under %d", v, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.InsertLocks.MaxHeld > 1 || st.Tree.DeleteLocks.MaxHeld > 1 {
		t.Fatalf("update footprint exceeded 1: %+v", st.Tree)
	}
}

func TestShardedCloseStopsEverything(t *testing.T) {
	s := NewSharded(2)
	for _, k := range spreadKeys(100) {
		_ = s.Insert(k, 0)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(1, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close = %v", err)
	}
}

func TestNewShardedPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(0) did not panic")
		}
	}()
	NewSharded(0)
}

func TestShardedOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.db")
	s, err := OpenSharded(3, Options{Path: path, MinPairs: 4, PageSize: 512, CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := spreadKeys(300)
	for _, k := range keys {
		if err := s.Insert(k, Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.shard%d", path, i)); err != nil {
			t.Fatalf("shard file %d: %v", i, err)
		}
	}
	for _, k := range []Key{keys[0], keys[150], keys[299]} {
		if v, err := s.Search(k); err != nil || v != Value(k) {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, err)
		}
	}
}
